"""Cumulative distribution functions for latency/cycle measurements.

Every latency and micro-architectural figure in the paper is a CDF; this
class holds the sample set and produces the (x, p) series, percentiles and
medians those figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CDF:
    """An empirical CDF over a list of numeric samples."""

    samples: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def percentile(self, fraction: float) -> float:
        """Value at the given cumulative fraction (0 < fraction <= 1)."""
        if not self.samples:
            return 0.0
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, int(fraction * len(ordered)) - 1))
        return float(ordered[index])

    @property
    def median(self) -> float:
        return self.percentile(0.5)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def minimum(self) -> float:
        return float(min(self.samples)) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return float(max(self.samples)) if self.samples else 0.0

    def series(self, points: int = 50) -> list[tuple[float, float]]:
        """(value, cumulative probability) pairs suitable for plotting."""
        if not self.samples:
            return []
        ordered = sorted(self.samples)
        total = len(ordered)
        points = max(2, min(points, total))
        series: list[tuple[float, float]] = []
        for i in range(points):
            fraction = (i + 1) / points
            index = min(total - 1, max(0, int(fraction * total) - 1))
            series.append((float(ordered[index]), fraction))
        return series

    def render(self, label: str = "", width: int = 48, points: int = 12) -> str:
        """ASCII rendering of the CDF (used by the figure benchmarks)."""
        if not self.samples:
            return f"{label}: (no samples)"
        lines = [f"{label} (n={self.count}, median={self.median:.0f})"]
        lo, hi = self.minimum, self.maximum
        span = (hi - lo) or 1.0
        for value, fraction in self.series(points):
            bar = "#" * max(1, int((value - lo) / span * width))
            lines.append(f"  p{int(fraction * 100):3d} {value:10.1f} {bar}")
        return "\n".join(lines)
