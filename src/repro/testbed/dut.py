"""The device under test: the compiled NF running on the simulated CPU.

Wraps the concrete interpreter and the memory hierarchy, and adds the parts
of the end-to-end path that are *not* the NF itself: the per-packet
DPDK/driver/NIC/wire overhead the paper quantifies with its NOP baseline,
and the measurement jitter of the hardware timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.perf.counters import PacketCounters
from repro.perf.cycles import CycleCosts, DEFAULT_CYCLE_COSTS
from repro.perf.interpreter import ConcreteInterpreter


@dataclass
class TestbedConfig:
    """Fixed parameters of the simulated testbed.

    ``wire_overhead_ns`` models everything between the traffic generator's
    timestamping NIC and the NF's first instruction (and back): PCIe, DMA,
    driver, DPDK rx/tx, serialisation delay.  It is calibrated so the NOP
    latency lands near the paper's ~4.3 µs NOP curve, and it is identical
    for every workload, so relative comparisons are unaffected.
    ``base_service_ns`` is the per-packet DPDK/driver cost that bounds
    throughput; it is calibrated so the NOP NF forwards ~3.45 Mpps.
    """

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    cycle_costs: CycleCosts = DEFAULT_CYCLE_COSTS
    wire_overhead_ns: float = 4280.0
    jitter_ns: float = 45.0
    base_service_ns: float = 289.0
    queue_capacity: int = 256
    loss_threshold: float = 0.01
    seed: int = 99


class DeviceUnderTest:
    """One NF deployed on the simulated testbed machine."""

    def __init__(self, nf: NetworkFunction, config: TestbedConfig | None = None) -> None:
        self.nf = nf
        self.config = config or TestbedConfig()
        self.hierarchy = MemoryHierarchy(self.config.hierarchy, cycle_costs=self.config.cycle_costs)
        self.interpreter = ConcreteInterpreter(
            nf.module, nf.entry, hierarchy=self.hierarchy, cycle_costs=self.config.cycle_costs
        )
        self._rng = random.Random(self.config.seed)

    def reset(self) -> None:
        """Fresh NF state and cold caches (a new measurement run)."""
        self.interpreter.reset()
        self._rng = random.Random(self.config.seed)

    # -- per-packet processing ----------------------------------------------------

    def process(self, packet: Packet) -> PacketCounters:
        """Run one packet through the NF, returning its hardware counters."""
        return self.interpreter.process_packet(packet)

    def nf_time_ns(self, counters: PacketCounters) -> float:
        """Time spent inside the NF proper for one packet."""
        return self.config.cycle_costs.cycles_to_ns(counters.cycles)

    def end_to_end_latency_ns(self, counters: PacketCounters) -> float:
        """TG-to-TG latency: wire/driver overhead + NF time + timestamp jitter."""
        jitter = self._rng.gauss(0.0, self.config.jitter_ns)
        return max(0.0, self.config.wire_overhead_ns + self.nf_time_ns(counters) + jitter)

    def service_time_ns(self, counters: PacketCounters) -> float:
        """Per-packet service time bounding throughput (DPDK cost + NF time)."""
        return self.config.base_service_ns + self.nf_time_ns(counters)
