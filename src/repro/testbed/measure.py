"""Measurement procedures of the evaluation (§5.1).

Three experiments per (NF, workload) pair, matching the paper:

* **Latency** — replay the workload's pcap in a loop at a rate low enough
  that at most one packet is outstanding; report the end-to-end latency CDF
  (hardware-timestamp style) next to a NOP baseline.
* **Maximum throughput** — find the highest offered rate at which the DUT
  drops less than 1 % of packets, by simulating a fixed-capacity rx queue
  fed at a constant rate and drained at the measured per-packet service
  times.
* **Micro-architectural characterisation** — per-packet reference cycles,
  instructions retired and L3 misses from the performance counters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.nf.base import NetworkFunction
from repro.perf.counters import CounterSummary, PacketCounters, aggregate_counters
from repro.testbed.cdf import CDF
from repro.testbed.dut import DeviceUnderTest, TestbedConfig
from repro.workloads.generators import Workload

#: Number of packets replayed per latency measurement (the paper replays
#: each pcap for 20 seconds; the scaled default keeps runs in seconds).
DEFAULT_REPLAY_PACKETS = 3000


@dataclass
class LatencyResult:
    """Latency CDF plus the per-packet counters behind it."""

    nf_name: str
    workload_name: str
    latency_ns: CDF = field(default_factory=CDF)
    cycles: CDF = field(default_factory=CDF)
    counters: list[PacketCounters] = field(default_factory=list)
    replayed_packets: int = 0

    @property
    def median_latency_ns(self) -> float:
        return self.latency_ns.median

    @property
    def counter_summary(self) -> CounterSummary:
        return aggregate_counters(self.counters)

    def deviation_from(self, baseline: "LatencyResult") -> float:
        """Median latency deviation from a baseline run (Table 5)."""
        return self.median_latency_ns - baseline.median_latency_ns


@dataclass
class ThroughputResult:
    """Maximum loss-free (<1 %) throughput."""

    nf_name: str
    workload_name: str
    max_rate_mpps: float
    loss_at_max: float

    def __str__(self) -> str:
        return f"{self.max_rate_mpps:.2f} Mpps"


def measure_latency(
    nf: NetworkFunction,
    workload: Workload,
    config: TestbedConfig | None = None,
    replay_packets: int = DEFAULT_REPLAY_PACKETS,
    dut: DeviceUnderTest | None = None,
) -> LatencyResult:
    """Replay ``workload`` and collect the end-to-end latency CDF."""
    dut = dut or DeviceUnderTest(nf, config)
    dut.reset()
    result = LatencyResult(nf_name=nf.name, workload_name=workload.name)
    for packet in workload.looped(replay_packets):
        counters = dut.process(packet)
        result.counters.append(counters)
        result.latency_ns.add(dut.end_to_end_latency_ns(counters))
        result.cycles.add(counters.cycles)
        result.replayed_packets += 1
    return result


def characterize(
    nf: NetworkFunction,
    workload: Workload,
    config: TestbedConfig | None = None,
    replay_packets: int = DEFAULT_REPLAY_PACKETS,
) -> CounterSummary:
    """Micro-architectural characterisation (Tables 2 and 3)."""
    return measure_latency(nf, workload, config, replay_packets).counter_summary


def _loss_fraction_at_rate(
    service_times_ns: list[float], rate_mpps: float, queue_capacity: int
) -> float:
    """Simulate a fixed-size rx queue fed at ``rate_mpps``; return loss."""
    if rate_mpps <= 0:
        return 0.0
    interval_ns = 1000.0 / rate_mpps  # ns between arrivals at rate (Mpps)
    # Completion times of queued/in-service packets.  The server is FIFO, so
    # completion times are appended in non-decreasing order and retiring is
    # an O(1) popleft from the front instead of an O(n) list filter.
    queue_free_at: deque[float] = deque()
    server_free_at = 0.0
    dropped = 0
    now = 0.0
    for service in service_times_ns:
        now += interval_ns
        # Retire completed packets from the queue.
        while queue_free_at and queue_free_at[0] <= now:
            queue_free_at.popleft()
        if len(queue_free_at) >= queue_capacity:
            dropped += 1
            continue
        start = max(now, server_free_at)
        server_free_at = start + service
        queue_free_at.append(server_free_at)
    return dropped / max(1, len(service_times_ns))


def measure_throughput(
    nf: NetworkFunction,
    workload: Workload,
    config: TestbedConfig | None = None,
    replay_packets: int = DEFAULT_REPLAY_PACKETS,
    rate_resolution_mpps: float = 0.01,
) -> ThroughputResult:
    """Find the highest offered rate with less than 1 % packet loss."""
    config = config or TestbedConfig()
    dut = DeviceUnderTest(nf, config)
    dut.reset()
    service_times = [
        dut.service_time_ns(dut.process(packet)) for packet in workload.looped(replay_packets)
    ]
    mean_service = sum(service_times) / len(service_times)
    # A single-core DUT cannot forward faster than its mean service rate;
    # bisect below that bound, letting the queue simulation account for
    # loss caused by service-time variability.
    low, high = 0.05, 1000.0 / mean_service
    threshold = config.loss_threshold
    while high - low > rate_resolution_mpps:
        mid = (low + high) / 2.0
        loss = _loss_fraction_at_rate(service_times, mid, config.queue_capacity)
        if loss < threshold:
            low = mid
        else:
            high = mid
    # Loss is not monotone in the offered rate (arrival/drain phase effects),
    # so the bisection's `low` can end on a rate whose measured loss exceeds
    # the threshold.  Step the reported rate down until the loss actually
    # measured at it is below the threshold, so "max loss-free rate" holds.
    rate = round(low, 2)
    loss = _loss_fraction_at_rate(service_times, rate, config.queue_capacity)
    while loss >= threshold and rate > rate_resolution_mpps:
        rate = round(rate - rate_resolution_mpps, 6)
        loss = _loss_fraction_at_rate(service_times, rate, config.queue_capacity)
    return ThroughputResult(
        nf_name=nf.name,
        workload_name=workload.name,
        max_rate_mpps=rate,
        loss_at_max=loss,
    )
