"""The simulated measurement testbed (§5.1).

Stands in for the paper's two-machine setup (DUT + MoonGen traffic
generator over 10 GbE): a DUT that executes the compiled NF on the
simulated CPU/memory hierarchy, a latency experiment that replays a pcap in
a loop with one outstanding packet and reports end-to-end latency CDFs
(including a NOP baseline), a max-throughput search (highest offered rate
with <1 % loss), and the micro-architectural characterisation built on the
per-packet performance counters.
"""

from repro.testbed.cdf import CDF
from repro.testbed.dut import DeviceUnderTest, TestbedConfig
from repro.testbed.measure import (
    LatencyResult,
    ThroughputResult,
    characterize,
    measure_latency,
    measure_throughput,
)

__all__ = [
    "CDF",
    "DeviceUnderTest",
    "LatencyResult",
    "TestbedConfig",
    "ThroughputResult",
    "characterize",
    "measure_latency",
    "measure_throughput",
]
