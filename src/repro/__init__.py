"""CASTAN reproduction: adversarial workload synthesis for network functions.

This package is a from-scratch Python reproduction of CASTAN (Pedrosa et al.,
SIGCOMM 2018) together with every substrate it depends on: a small
intermediate representation and compiler frontend standing in for LLVM, a
symbolic execution engine with a bit-vector constraint solver, a simulated
cache hierarchy with contention-set discovery, rainbow-table hash reversal, a
library of network functions, and a simulated measurement testbed.

The top-level API re-exports the pieces a typical user needs:

>>> from repro import Castan, CastanConfig, get_nf
>>> nf = get_nf("lpm-patricia")
>>> result = Castan(CastanConfig(max_states=200)).analyze(nf)
>>> len(result.packets) > 0
True

The re-exports are resolved lazily so that light-weight uses (e.g. only the
packet substrate or only the IR) do not pay for importing the full pipeline.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = [
    "Castan",
    "CastanConfig",
    "CastanResult",
    "available_nfs",
    "get_nf",
    "__version__",
]

_LAZY_EXPORTS = {
    "Castan": ("repro.core.castan", "Castan"),
    "CastanResult": ("repro.core.castan", "CastanResult"),
    "CastanConfig": ("repro.core.config", "CastanConfig"),
    "available_nfs": ("repro.nf.registry", "available_nfs"),
    "get_nf": ("repro.nf.registry", "get_nf"),
}


def __getattr__(name: str):
    """Lazily resolve the public re-exports listed in ``__all__``."""
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
