"""Flow abstractions shared by the workload generators and the NFs.

The paper's workloads are characterised by their flow structure (e.g. the
Zipfian workload has 100,005 packets in 6,674 unique flows).  A
:class:`FlowKey` is the canonical 5-tuple; a :class:`Flow` couples a key
with a packet template so generators can emit many packets of one flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import IPProtocol, Packet


@dataclass(frozen=True, order=True)
class FlowKey:
    """An IPv4 5-tuple identifying a flow."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = int(IPProtocol.UDP)

    def reversed(self) -> "FlowKey":
        """The key of the return-direction flow (endpoints swapped)."""
        return FlowKey(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def to_packet(self, payload: bytes = b"") -> Packet:
        """Materialise one packet of this flow."""
        return Packet(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            protocol=self.protocol,
            payload=payload,
        )

    @staticmethod
    def of_packet(packet: Packet) -> "FlowKey":
        """Extract the flow key from a packet."""
        return FlowKey(
            src_ip=packet.src_ip,
            dst_ip=packet.dst_ip,
            src_port=packet.src_port,
            dst_port=packet.dst_port,
            protocol=packet.protocol,
        )


@dataclass
class Flow:
    """A flow plus the number of packets a workload should emit for it."""

    key: FlowKey
    packet_count: int = 1
    payload: bytes = b""

    def packets(self) -> list[Packet]:
        """Expand the flow into its packet sequence."""
        return [self.key.to_packet(self.payload) for _ in range(self.packet_count)]


def unique_flows(packets: list[Packet]) -> set[FlowKey]:
    """Return the set of distinct flow keys in a packet sequence."""
    return {FlowKey.of_packet(p) for p in packets}
