"""Packet substrate: headers, checksums, flows, and pcap I/O.

This subpackage plays the role the paper delegates to DPDK's mbuf handling
and MoonGen's pcap replay: constructing and parsing Ethernet/IPv4/TCP/UDP
packets, computing checksums, describing flows, and reading/writing real
pcap files so that synthesized adversarial workloads are materialised in the
same format the paper's tooling produces.
"""

from repro.net.checksum import internet_checksum
from repro.net.flows import Flow, FlowKey
from repro.net.packet import (
    EtherType,
    IPProtocol,
    Packet,
    PacketField,
    make_udp_packet,
    make_tcp_packet,
    parse_packet,
)
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap

__all__ = [
    "EtherType",
    "Flow",
    "FlowKey",
    "IPProtocol",
    "Packet",
    "PacketField",
    "PcapReader",
    "PcapWriter",
    "internet_checksum",
    "make_tcp_packet",
    "make_udp_packet",
    "parse_packet",
    "read_pcap",
    "write_pcap",
]
