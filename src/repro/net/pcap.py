"""Minimal pcap (libpcap classic format) reader and writer.

CASTAN emits adversarial workloads as pcap files that MoonGen replays; this
module implements the classic pcap container (magic 0xA1B2C3D4, microsecond
timestamps, LINKTYPE_ETHERNET) so generated workloads round-trip through a
format any standard tool (tcpdump, Wireshark, MoonGen) can consume.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.net.packet import Packet, PacketParseError, parse_packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION_MAJOR = 2
PCAP_VERSION_MINOR = 4
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")

#: Link types this reader knows how to hand to the packet parser.  Anything
#: else (LINKTYPE_RAW, 802.11, ...) would silently misparse every frame, so
#: an unknown link type is a format error at open time, not a per-record one.
SUPPORTED_LINKTYPES = frozenset({LINKTYPE_ETHERNET})

#: Upper bound on a single record's captured length.  Real captures top out
#: at the 64 KiB snaplen this writer uses; a larger claim is a corrupt or
#: hostile length field and must not drive a giant allocation.
MAX_RECORD_BYTES = 1 << 18


class PcapFormatError(ValueError):
    """Raised when a file is not a well-formed classic pcap capture."""


@dataclass
class PcapRecord:
    """One captured frame: timestamp plus raw bytes."""

    timestamp: float
    data: bytes

    def to_packet(self) -> Packet:
        """Parse the raw frame into a :class:`Packet`."""
        return parse_packet(self.data)


class PcapWriter:
    """Stream packets into a pcap file.

    Usage::

        with PcapWriter(path) as writer:
            for packet in workload:
                writer.write_packet(packet)
    """

    def __init__(self, target: str | Path | BinaryIO, snaplen: int = 65535) -> None:
        if isinstance(target, (str, Path)):
            self._stream: BinaryIO = open(target, "wb")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._snaplen = snaplen
        self._clock = 0.0
        self._stream.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION_MAJOR,
                PCAP_VERSION_MINOR,
                0,  # thiszone
                0,  # sigfigs
                snaplen,
                LINKTYPE_ETHERNET,
            )
        )

    def write_frame(self, data: bytes, timestamp: float | None = None) -> None:
        """Write one raw Ethernet frame."""
        if timestamp is None:
            timestamp = self._clock
            self._clock += 1e-6
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1_000_000))
        captured = data[: self._snaplen]
        self._stream.write(
            _RECORD_HEADER.pack(seconds, microseconds, len(captured), len(data))
        )
        self._stream.write(captured)

    def write_packet(self, packet: Packet, timestamp: float | None = None) -> None:
        """Serialise and write one :class:`Packet`."""
        self.write_frame(packet.to_bytes(), timestamp)

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PcapReader:
    """Iterate over records of a classic pcap file (either byte order)."""

    def __init__(self, source: str | Path | BinaryIO) -> None:
        if isinstance(source, (str, Path)):
            self._stream: BinaryIO = open(source, "rb")
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False
        header = self._stream.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapFormatError("truncated pcap global header")
        magic_le = struct.unpack("<I", header[:4])[0]
        if magic_le == PCAP_MAGIC:
            self._endian = "<"
        elif magic_le == PCAP_MAGIC_SWAPPED:
            self._endian = ">"
        else:
            raise PcapFormatError(f"bad pcap magic 0x{magic_le:08x}")
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.snaplen = fields[5]
        self.linktype = fields[6]
        if self.linktype not in SUPPORTED_LINKTYPES:
            raise PcapFormatError(
                f"unsupported pcap link type {self.linktype} "
                f"(supported: {sorted(SUPPORTED_LINKTYPES)})"
            )

    def __iter__(self) -> Iterator[PcapRecord]:
        record = struct.Struct(self._endian + "IIII")
        while True:
            header = self._stream.read(record.size)
            if not header:
                return
            if len(header) < record.size:
                raise PcapFormatError(
                    f"truncated pcap record header ({len(header)} of {record.size} bytes)"
                )
            seconds, microseconds, captured_len, _original_len = record.unpack(header)
            if captured_len > MAX_RECORD_BYTES:
                raise PcapFormatError(
                    f"implausible pcap record length {captured_len} "
                    f"(limit {MAX_RECORD_BYTES})"
                )
            data = self._stream.read(captured_len)
            if len(data) < captured_len:
                raise PcapFormatError(
                    f"truncated pcap record data ({len(data)} of {captured_len} bytes)"
                )
            yield PcapRecord(timestamp=seconds + microseconds / 1e6, data=data)

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_pcap(path: str | Path, packets: Iterable[Packet]) -> int:
    """Write a packet sequence to ``path``; returns the number written."""
    count = 0
    with PcapWriter(path) as writer:
        for packet in packets:
            writer.write_packet(packet)
            count += 1
    return count


def read_pcap(path: str | Path, strict: bool = False) -> list[Packet]:
    """Read all parseable packets from ``path``.

    With ``strict=True`` unparseable frames raise; otherwise they are
    silently skipped (mirroring how the NFs drop non-IPv4 traffic).
    """
    packets: list[Packet] = []
    with PcapReader(path) as reader:
        for record in reader:
            try:
                packets.append(record.to_packet())
            except PacketParseError:
                if strict:
                    raise
    return packets


def packets_to_pcap_bytes(packets: Iterable[Packet]) -> bytes:
    """Serialise a packet sequence to in-memory pcap bytes."""
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    for packet in packets:
        writer.write_packet(packet)
    return buffer.getvalue()
