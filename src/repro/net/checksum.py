"""Internet checksum (RFC 1071) and helpers used by the packet builders."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    The algorithm is the classic RFC 1071 fold: sum 16-bit big-endian words
    (padding with a trailing zero byte if the length is odd), fold carries
    back into the low 16 bits, and return the one's complement.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo header used for TCP/UDP checksums."""
    return bytes(
        [
            (src_ip >> 24) & 0xFF,
            (src_ip >> 16) & 0xFF,
            (src_ip >> 8) & 0xFF,
            src_ip & 0xFF,
            (dst_ip >> 24) & 0xFF,
            (dst_ip >> 16) & 0xFF,
            (dst_ip >> 8) & 0xFF,
            dst_ip & 0xFF,
            0,
            protocol & 0xFF,
            (length >> 8) & 0xFF,
            length & 0xFF,
        ]
    )


def verify_checksum(data: bytes) -> bool:
    """Return True when a buffer that embeds its own checksum sums to zero."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
