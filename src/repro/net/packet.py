"""Packet construction and parsing for Ethernet/IPv4/TCP/UDP frames.

CASTAN's output is a sequence of concrete packets; the NFs under analysis
read the five-tuple fields out of those packets.  This module provides a
small, dependency-free packet model: a :class:`Packet` dataclass holding the
fields the evaluation NFs care about, plus byte-level serialisation and
parsing so that workloads can round-trip through real pcap files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.checksum import internet_checksum, pseudo_header

ETHER_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8
TCP_HEADER_LEN = 20

DEFAULT_SRC_MAC = 0x02_00_00_00_00_01
DEFAULT_DST_MAC = 0x02_00_00_00_00_02


class EtherType(enum.IntEnum):
    """EtherType values understood by the evaluation NFs."""

    IPV4 = 0x0800
    ARP = 0x0806
    IPV6 = 0x86DD


class IPProtocol(enum.IntEnum):
    """IP protocol numbers used by the evaluation NFs."""

    ICMP = 1
    TCP = 6
    UDP = 17


class PacketField(enum.Enum):
    """Symbolic names of the packet fields exposed to NF programs.

    These are the fields that become symbolic inputs during CASTAN's
    analysis: the IPv4 five-tuple.  The enumeration keeps the NF dialect,
    the symbolic engine and the concrete interpreter agreeing on field
    identity, width and byte offsets.
    """

    SRC_IP = ("src_ip", 32)
    DST_IP = ("dst_ip", 32)
    SRC_PORT = ("src_port", 16)
    DST_PORT = ("dst_port", 16)
    PROTOCOL = ("protocol", 8)

    def __init__(self, field_name: str, bits: int) -> None:
        self.field_name = field_name
        self.bits = bits

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1


@dataclass
class Packet:
    """A single packet as seen by the evaluation NFs.

    Only the fields the NFs inspect are modelled explicitly; payload bytes
    are preserved opaquely so round-tripping through pcap is lossless.
    """

    src_ip: int = 0x0A000001
    dst_ip: int = 0x0A000002
    src_port: int = 10000
    dst_port: int = 80
    protocol: int = int(IPProtocol.UDP)
    payload: bytes = b""
    src_mac: int = DEFAULT_SRC_MAC
    dst_mac: int = DEFAULT_DST_MAC
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.src_ip &= 0xFFFFFFFF
        self.dst_ip &= 0xFFFFFFFF
        self.src_port &= 0xFFFF
        self.dst_port &= 0xFFFF
        self.protocol &= 0xFF

    # -- field access -----------------------------------------------------

    def get_field(self, which: PacketField) -> int:
        """Return the value of a five-tuple field by symbolic name."""
        return int(getattr(self, which.field_name))

    def with_field(self, which: PacketField, value: int) -> "Packet":
        """Return a copy of this packet with one five-tuple field replaced."""
        kwargs = {
            "src_ip": self.src_ip,
            "dst_ip": self.dst_ip,
            "src_port": self.src_port,
            "dst_port": self.dst_port,
            "protocol": self.protocol,
            "payload": self.payload,
            "src_mac": self.src_mac,
            "dst_mac": self.dst_mac,
        }
        kwargs[which.field_name] = value & which.mask
        return Packet(**kwargs)

    @property
    def flow_tuple(self) -> tuple[int, int, int, int, int]:
        """The 5-tuple identifying this packet's flow."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    # -- serialisation ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to an Ethernet frame with correct IPv4/L4 checksums."""
        l4 = self._l4_bytes()
        total_len = IPV4_HEADER_LEN + len(l4)
        ip_header = bytearray(IPV4_HEADER_LEN)
        ip_header[0] = 0x45  # version 4, IHL 5
        ip_header[1] = 0x00
        ip_header[2] = (total_len >> 8) & 0xFF
        ip_header[3] = total_len & 0xFF
        ip_header[4:6] = b"\x00\x00"  # identification
        ip_header[6:8] = b"\x40\x00"  # don't fragment
        ip_header[8] = 64  # TTL
        ip_header[9] = self.protocol
        ip_header[12] = (self.src_ip >> 24) & 0xFF
        ip_header[13] = (self.src_ip >> 16) & 0xFF
        ip_header[14] = (self.src_ip >> 8) & 0xFF
        ip_header[15] = self.src_ip & 0xFF
        ip_header[16] = (self.dst_ip >> 24) & 0xFF
        ip_header[17] = (self.dst_ip >> 16) & 0xFF
        ip_header[18] = (self.dst_ip >> 8) & 0xFF
        ip_header[19] = self.dst_ip & 0xFF
        checksum = internet_checksum(bytes(ip_header))
        ip_header[10] = (checksum >> 8) & 0xFF
        ip_header[11] = checksum & 0xFF

        ether = bytearray(ETHER_HEADER_LEN)
        ether[0:6] = self.dst_mac.to_bytes(6, "big")
        ether[6:12] = self.src_mac.to_bytes(6, "big")
        ether[12] = (int(EtherType.IPV4) >> 8) & 0xFF
        ether[13] = int(EtherType.IPV4) & 0xFF
        return bytes(ether) + bytes(ip_header) + l4

    def _l4_bytes(self) -> bytes:
        if self.protocol == int(IPProtocol.UDP):
            return self._udp_bytes()
        if self.protocol == int(IPProtocol.TCP):
            return self._tcp_bytes()
        return self.payload

    def _udp_bytes(self) -> bytes:
        length = UDP_HEADER_LEN + len(self.payload)
        header = bytearray(UDP_HEADER_LEN)
        header[0] = (self.src_port >> 8) & 0xFF
        header[1] = self.src_port & 0xFF
        header[2] = (self.dst_port >> 8) & 0xFF
        header[3] = self.dst_port & 0xFF
        header[4] = (length >> 8) & 0xFF
        header[5] = length & 0xFF
        pseudo = pseudo_header(self.src_ip, self.dst_ip, self.protocol, length)
        checksum = internet_checksum(pseudo + bytes(header) + self.payload)
        if checksum == 0:
            checksum = 0xFFFF
        header[6] = (checksum >> 8) & 0xFF
        header[7] = checksum & 0xFF
        return bytes(header) + self.payload

    def _tcp_bytes(self) -> bytes:
        length = TCP_HEADER_LEN + len(self.payload)
        header = bytearray(TCP_HEADER_LEN)
        header[0] = (self.src_port >> 8) & 0xFF
        header[1] = self.src_port & 0xFF
        header[2] = (self.dst_port >> 8) & 0xFF
        header[3] = self.dst_port & 0xFF
        header[12] = (TCP_HEADER_LEN // 4) << 4  # data offset
        header[13] = 0x02  # SYN
        header[14] = 0xFF  # window
        header[15] = 0xFF
        pseudo = pseudo_header(self.src_ip, self.dst_ip, self.protocol, length)
        checksum = internet_checksum(pseudo + bytes(header) + self.payload)
        header[16] = (checksum >> 8) & 0xFF
        header[17] = checksum & 0xFF
        return bytes(header) + self.payload

    @property
    def wire_length(self) -> int:
        """Frame length on the wire in bytes (without FCS)."""
        return len(self.to_bytes())

    def __hash__(self) -> int:
        return hash(self.flow_tuple + (self.payload,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return self.flow_tuple == other.flow_tuple and self.payload == other.payload


def make_udp_packet(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
) -> Packet:
    """Convenience constructor for a UDP packet."""
    return Packet(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=int(IPProtocol.UDP),
        payload=payload,
    )


def make_tcp_packet(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
) -> Packet:
    """Convenience constructor for a TCP packet."""
    return Packet(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=int(IPProtocol.TCP),
        payload=payload,
    )


class PacketParseError(ValueError):
    """Raised when a byte buffer cannot be parsed as an Ethernet/IPv4 frame."""


def parse_packet(data: bytes) -> Packet:
    """Parse an Ethernet frame produced by :meth:`Packet.to_bytes`.

    Non-IPv4 frames and truncated buffers raise :class:`PacketParseError`;
    transport protocols other than TCP/UDP are returned with zero ports and
    the remaining bytes preserved as payload.
    """
    if len(data) < ETHER_HEADER_LEN + IPV4_HEADER_LEN:
        raise PacketParseError(f"frame too short: {len(data)} bytes")
    dst_mac = int.from_bytes(data[0:6], "big")
    src_mac = int.from_bytes(data[6:12], "big")
    ether_type = (data[12] << 8) | data[13]
    if ether_type != int(EtherType.IPV4):
        raise PacketParseError(f"unsupported EtherType 0x{ether_type:04x}")
    ip = data[ETHER_HEADER_LEN:]
    ihl = (ip[0] & 0x0F) * 4
    if ihl < IPV4_HEADER_LEN or len(ip) < ihl:
        raise PacketParseError("truncated IPv4 header")
    protocol = ip[9]
    src_ip = int.from_bytes(ip[12:16], "big")
    dst_ip = int.from_bytes(ip[16:20], "big")
    l4 = ip[ihl:]
    src_port = dst_port = 0
    payload = bytes(l4)
    if protocol == int(IPProtocol.UDP) and len(l4) >= UDP_HEADER_LEN:
        src_port = (l4[0] << 8) | l4[1]
        dst_port = (l4[2] << 8) | l4[3]
        payload = bytes(l4[UDP_HEADER_LEN:])
    elif protocol == int(IPProtocol.TCP) and len(l4) >= TCP_HEADER_LEN:
        src_port = (l4[0] << 8) | l4[1]
        dst_port = (l4[2] << 8) | l4[3]
        data_offset = (l4[12] >> 4) * 4
        payload = bytes(l4[data_offset:]) if len(l4) >= data_offset else b""
    return Packet(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        payload=payload,
        src_mac=src_mac,
        dst_mac=dst_mac,
    )
