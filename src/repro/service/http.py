"""REST transport for the synthesis service (stdlib-only asyncio HTTP).

A deliberately small HTTP/1.1 server over ``asyncio.start_server`` — no
framework, one request per connection, ``Connection: close`` framing — which
is all the job API needs and keeps the repo dependency-free.

Endpoints (all JSON unless noted)::

    GET  /healthz                  liveness + job-state counts + store size
    POST /jobs                     submit {"nf": ...} or {"nfs": [...]},
                                   optional "config" overrides, "num_packets"
    POST /score                    submit a score job: {"nf": ..., "traffic":
                                   {"synthetic": N, "seed": s} or
                                   {"pcap_b64": ...}}, optional "config",
                                   "num_packets", "options" (scorer knobs);
                                   windows stream via /jobs/<id>/stream
    GET  /jobs                     every job, in submission order
    GET  /jobs/<id>                one job
    POST /jobs/<id>/cancel         request cancellation
    GET  /jobs/<id>/stream         NDJSON event stream: full history replayed,
                                   then live "status"/"round" events, closed
                                   after the terminal "end" event
    GET  /jobs/<id>/result         stored result summary + perf record
    GET  /jobs/<id>/result.pkl     the pickled CastanResult itself (binary)
    GET  /store                    stored content addresses
    GET  /store/<key>              one stored entry's metadata
    GET  /signatures               stored signature-set keys (the sig shelf)

The stream response carries no ``Content-Length``: with ``Connection:
close`` the body is framed by EOF, which every HTTP/1.1 client (including
stdlib ``http.client``) handles, and lets the server write rounds the
moment they happen.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import pickle

from repro.service.server import SynthesisService

#: Hard ceiling on request-body size (jobs are a few hundred bytes of JSON).
MAX_BODY_BYTES = 1 << 20
#: Seconds allowed for reading one request head + body.
REQUEST_READ_TIMEOUT = 10.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """Routed straight into an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _response_head(status: int, content_type: str, length: int | None) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


async def _send_json(writer: asyncio.StreamWriter, status: int, payload) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    writer.write(_response_head(status, "application/json", len(body)))
    writer.write(body)
    await writer.drain()


async def _send_bytes(writer: asyncio.StreamWriter, status: int, body: bytes) -> None:
    writer.write(_response_head(status, "application/octet-stream", len(body)))
    writer.write(body)
    await writer.drain()


async def _read_request(reader: asyncio.StreamReader) -> tuple[str, str, dict]:
    """Parse ``(method, path, body_json)`` from one request."""
    request_line = await reader.readline()
    if not request_line:
        raise HttpError(400, "empty request")
    try:
        method, target, _version = request_line.decode().split(maxsplit=2)
    except ValueError:
        raise HttpError(400, f"malformed request line {request_line!r}") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise HttpError(400, f"request body too large ({length} bytes)")
    body: dict = {}
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
    return method.upper(), target.split("?", 1)[0], body


def _get_job(service: SynthesisService, job_id: str):
    try:
        return service.jobs[job_id]
    except KeyError:
        raise HttpError(404, f"unknown job {job_id!r}") from None


async def _stream_job(
    service: SynthesisService, writer: asyncio.StreamWriter, job_id: str
) -> None:
    """NDJSON event stream: replayed history, then live events, then EOF."""
    _get_job(service, job_id)
    writer.write(_response_head(200, "application/x-ndjson", None))
    await writer.drain()
    queue = service.subscribe(job_id)
    try:
        while True:
            event = await queue.get()
            writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
            await writer.drain()
            if event.get("event") == "end":
                return
    finally:
        service.unsubscribe(job_id, queue)


def _submit(service: SynthesisService, body: dict) -> dict:
    specs = body.get("nfs")
    if specs is None:
        if "nf" not in body:
            raise HttpError(400, "submission needs 'nf' (one spec) or 'nfs' (a list)")
        specs = [body["nf"]]
    if not isinstance(specs, list) or not all(isinstance(s, str) for s in specs):
        raise HttpError(400, "'nfs' must be a list of NF spec strings")
    config = body.get("config") or {}
    num_packets = body.get("num_packets")
    try:
        jobs = [service.submit(spec, config, num_packets) for spec in specs]
    except (KeyError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise HttpError(400, str(message)) from None
    if "nf" in body and "nfs" not in body:
        return jobs[0].to_dict()
    return {"jobs": [job.to_dict() for job in jobs]}


def _submit_score(service: SynthesisService, body: dict) -> dict:
    if "nf" not in body:
        raise HttpError(400, "score submission needs 'nf'")
    traffic = body.get("traffic")
    if not isinstance(traffic, dict):
        raise HttpError(400, "score submission needs a 'traffic' object")
    traffic = dict(traffic)
    if "pcap_b64" in traffic:
        try:
            traffic["pcap_bytes"] = base64.b64decode(
                traffic.pop("pcap_b64"), validate=True
            )
        except (binascii.Error, TypeError, ValueError) as exc:
            raise HttpError(400, f"'pcap_b64' is not valid base64: {exc}") from None
    try:
        job = service.submit_score(
            body["nf"],
            body.get("config") or {},
            traffic=traffic,
            num_packets=body.get("num_packets"),
            scorer_options=body.get("options") or {},
        )
    except (KeyError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise HttpError(400, str(message)) from None
    return job.to_dict()


def _stored_result(service: SynthesisService, job_id: str):
    job = _get_job(service, job_id)
    if job.state != "done":
        raise HttpError(409, f"job {job_id} is {job.state}, not done")
    entry = service.store.get(job.cache_key)
    if entry is None:
        raise HttpError(404, f"job {job_id}: stored entry {job.cache_key} vanished")
    return entry


async def _route(
    service: SynthesisService,
    method: str,
    path: str,
    body: dict,
    writer: asyncio.StreamWriter,
) -> None:
    parts = [part for part in path.split("/") if part]

    if method == "GET" and parts == ["healthz"]:
        await _send_json(
            writer,
            200,
            {"ok": True, "jobs": service.counts(), "store_entries": len(service.store)},
        )
    elif parts == ["jobs"]:
        if method == "POST":
            await _send_json(writer, 200, _submit(service, body))
        elif method == "GET":
            await _send_json(
                writer, 200, {"jobs": [job.to_dict() for job in service.job_list()]}
            )
        else:
            raise HttpError(405, f"{method} not allowed on /jobs")
    elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
        await _send_json(writer, 200, _get_job(service, parts[1]).to_dict())
    elif len(parts) == 3 and parts[0] == "jobs":
        job_id, action = parts[1], parts[2]
        if action == "cancel" and method == "POST":
            _get_job(service, job_id)
            await _send_json(writer, 200, service.cancel(job_id).to_dict())
        elif action == "stream" and method == "GET":
            await _stream_job(service, writer, job_id)
        elif action == "result" and method == "GET":
            _result, meta = _stored_result(service, job_id)
            await _send_json(writer, 200, meta)
        elif action == "result.pkl" and method == "GET":
            result, _meta = _stored_result(service, job_id)
            await _send_bytes(
                writer, 200, pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            )
        else:
            raise HttpError(404, f"unknown endpoint {method} {path}")
    elif parts == ["score"]:
        if method != "POST":
            raise HttpError(405, f"{method} not allowed on /score")
        await _send_json(writer, 200, _submit_score(service, body))
    elif parts == ["signatures"] and method == "GET":
        await _send_json(writer, 200, {"keys": service.store.signature_keys()})
    elif parts == ["store"] and method == "GET":
        await _send_json(writer, 200, {"keys": service.store.keys()})
    elif len(parts) == 2 and parts[0] == "store" and method == "GET":
        meta = service.store.get_meta(parts[1])
        if meta is None:
            raise HttpError(404, f"no stored entry {parts[1]!r}")
        await _send_json(writer, 200, meta)
    else:
        raise HttpError(404, f"unknown endpoint {method} {path}")


async def handle_connection(
    service: SynthesisService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            method, path, body = await asyncio.wait_for(
                _read_request(reader), timeout=REQUEST_READ_TIMEOUT
            )
            await _route(service, method, path, body, writer)
        except HttpError as exc:
            await _send_json(writer, exc.status, {"error": exc.message})
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except (ConnectionResetError, BrokenPipeError):
            pass  # client dropped the response; nothing to do
        except Exception as exc:  # defensive: the server must survive handlers
            try:
                await _send_json(writer, 500, {"error": f"internal error: {exc!r}"})
            except (ConnectionResetError, BrokenPipeError):
                pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def serve(
    service: SynthesisService, host: str = "127.0.0.1", port: int = 8321
) -> asyncio.AbstractServer:
    """Start the service core and bind the REST front end.

    Returns the listening ``asyncio`` server; ``port=0`` binds an ephemeral
    port (``server.sockets[0].getsockname()[1]`` reveals it — the tests and
    the smoke tool use exactly that).
    """
    await service.start()

    async def _handler(reader, writer):
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(_handler, host=host, port=port)
