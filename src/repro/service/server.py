"""Synthesis-as-a-service: the asyncio job server core.

:class:`SynthesisService` turns the one-shot CLI pipeline into a
long-running analysis service:

* **submission** validates the job eagerly (unknown NF names and typoed
  config knobs fail the submit, not the worker), computes its content
  address, and either short-circuits to the store (**cache hit**: the job
  is born ``done`` with the persisted result and perf record, no worker
  ever starts) or enqueues it;
* **scheduling** is a fixed set of asyncio consumer tasks
  (``max_concurrent_jobs``) pulling from one queue — submission order in,
  bounded concurrency out;
* **execution** spawns one worker process per attempt
  (:func:`~repro.service.worker.run_job_worker`, running the same
  :func:`~repro.parallel.portfolio.analyze_one_nf` entry point the
  portfolio uses) under a :class:`~repro.parallel.lease.WorkerLease`:
  heartbeats prove liveness, ``job_timeout`` bounds wall clock, and a
  revoked or crashed attempt retries up to ``max_attempts`` times before
  the job fails;
* **progress** streams live: every :class:`~repro.symbex.batch.RoundStats`
  the worker reports is appended to the job's event history and fanned out
  to subscribers (the HTTP layer's NDJSON stream), so clients follow the
  search round by round instead of waiting for the end-of-run result;
* **completion** persists ``(result, perf record)`` into the
  content-addressed :class:`~repro.service.store.ResultStore`, which is
  exactly what makes the *next* submission of the same ``(nf, config)``
  free.

The service core is HTTP-agnostic; :mod:`repro.service.http` exposes it
over REST and :mod:`repro.service.client` is the matching stdlib client.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from repro.core.config import CastanConfig
from repro.nf.registry import get_nf
from repro.parallel.lease import WorkerLease
from repro.parallel.pool import make_context
from repro.scoring.jobs import run_score_job
from repro.scoring.scorer import ScorerOptions
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SCORE,
    JobRecord,
)
from repro.service.store import ResultStore, perf_record, result_summary
from repro.service.worker import run_job_worker

#: Sentinel returned by the queue-poll helper when no event arrived.
_NO_EVENT = object()


class SynthesisService:
    """Job table + scheduler + worker supervision (no transport)."""

    def __init__(
        self,
        store: ResultStore,
        max_concurrent_jobs: int = 2,
        job_timeout: float | None = 600.0,
        lease_timeout: float | None = 30.0,
        heartbeat_interval: float = 1.0,
        max_attempts: int = 2,
        poll_interval: float = 0.05,
    ) -> None:
        self.store = store
        self.max_concurrent_jobs = max(1, max_concurrent_jobs)
        self.job_timeout = job_timeout
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        self.max_attempts = max(1, max_attempts)
        self.poll_interval = poll_interval
        self.jobs: dict[str, JobRecord] = {}
        self._job_ids = itertools.count(1)
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._events: dict[str, list[dict]] = {}
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._leases: dict[str, WorkerLease] = {}
        self._tasks: list[asyncio.Task] = []

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the scheduler tasks (idempotent)."""
        if self._tasks:
            return
        self._tasks = [
            asyncio.create_task(self._scheduler(), name=f"scheduler-{i}")
            for i in range(self.max_concurrent_jobs)
        ]

    async def shutdown(self) -> None:
        """Stop schedulers and revoke every live worker."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        for lease in list(self._leases.values()):
            lease.revoke()
        self._leases.clear()

    # -- submission / inspection ----------------------------------------------

    def submit(
        self,
        nf_spec: str,
        config_overrides: dict | None = None,
        num_packets: int | None = None,
    ) -> JobRecord:
        """Validate, address, and either cache-hit or enqueue one job.

        Raises ``KeyError`` for unknown NF specs and ``ValueError`` for
        unknown config fields — submission is the validation boundary, so
        a worker never starts on a job that cannot run.
        """
        config = CastanConfig.from_dict(config_overrides or {})
        nf = get_nf(nf_spec)  # KeyError (with suggestions) on unknown specs
        cache_key = self.store.key_for(nf, config, num_packets)
        job = JobRecord(
            job_id=f"job-{next(self._job_ids):04d}",
            nf_spec=nf_spec,
            config=config.to_canonical_dict(),
            num_packets=num_packets,
            cache_key=cache_key,
            config_hash=config.content_hash(),
            nf_fingerprint=nf.fingerprint(),
            max_attempts=self.max_attempts,
        )
        self.jobs[job.job_id] = job
        self._events[job.job_id] = []

        meta = self.store.get_meta(cache_key)
        if meta is not None:
            # The content address already has a result: serve it without
            # running anything.  This is the acceptance criterion of the
            # whole service — an unchanged (nf, config) resubmission is free.
            job.cached = True
            job.state = DONE
            job.result_summary = meta["result"]
            job.perf = meta["perf"]
            job.finished_at = time.time()
            self._publish_status(job)
            self._publish_end(job)
            return job

        self._publish_status(job)
        self._queue.put_nowait(job.job_id)
        return job

    def submit_score(
        self,
        nf_spec: str,
        config_overrides: dict | None = None,
        traffic: dict | None = None,
        num_packets: int | None = None,
        scorer_options: dict | None = None,
    ) -> JobRecord:
        """Validate and enqueue one score job (distill + stream scoring).

        Unlike :meth:`submit`, a score job never short-circuits at
        submission: scoring the *traffic* is the work.  The expensive
        halves — the analysis result and the distilled signature set — are
        still store-first inside the executor, so repeat scores of the same
        ``(nf, config)`` reuse both and pay only for streaming.
        """
        config = CastanConfig.from_dict(config_overrides or {})
        nf = get_nf(nf_spec)
        traffic = dict(traffic or {})
        if not any(k in traffic for k in ("pcap_bytes", "pcap_path", "synthetic")):
            raise ValueError(
                "score traffic needs 'pcap_bytes', 'pcap_path' or 'synthetic' "
                f"(got keys {sorted(traffic)})"
            )
        if scorer_options:
            ScorerOptions(**scorer_options)  # typoed knobs fail the submit
        job = JobRecord(
            job_id=f"job-{next(self._job_ids):04d}",
            nf_spec=nf_spec,
            config=config.to_canonical_dict(),
            num_packets=num_packets,
            cache_key=self.store.key_for(nf, config, num_packets),
            config_hash=config.content_hash(),
            nf_fingerprint=nf.fingerprint(),
            kind=SCORE,
            traffic=traffic,
            scorer_options=dict(scorer_options or {}),
            max_attempts=1,  # scoring is store-backed: a retry re-pays nothing
        )
        self.jobs[job.job_id] = job
        self._events[job.job_id] = []
        self._publish_status(job)
        self._queue.put_nowait(job.job_id)
        return job

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; queued jobs die immediately, running ones
        are revoked by their drain loop at the next poll tick."""
        job = self.jobs[job_id]
        if job.is_terminal:
            return job
        job.cancel_requested = True
        if job.state == QUEUED:
            # The scheduler will skip it when it pops; settle it now so the
            # client sees the terminal state without waiting for the pop.
            job.state = CANCELLED
            job.finished_at = time.time()
            self._publish_status(job)
            self._publish_end(job)
        return job

    def job_list(self) -> list[JobRecord]:
        return list(self.jobs.values())

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # -- event pub/sub --------------------------------------------------------

    def subscribe(self, job_id: str) -> asyncio.Queue:
        """An event queue preloaded with the job's full history.

        Every event of the job's life is replayed first, then live events
        follow; after a terminal ``"end"`` event no further events arrive.
        The caller must :meth:`unsubscribe` when done.
        """
        queue: asyncio.Queue = asyncio.Queue()
        for event in self._events[job_id]:
            queue.put_nowait(event)
        self._subscribers.setdefault(job_id, set()).add(queue)
        return queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        self._subscribers.get(job_id, set()).discard(queue)

    def _publish(self, job_id: str, event: dict) -> None:
        self._events[job_id].append(event)
        for queue in self._subscribers.get(job_id, ()):
            queue.put_nowait(event)

    def _publish_status(self, job: JobRecord) -> None:
        self._publish(
            job.job_id,
            {
                "event": "status",
                "job_id": job.job_id,
                "state": job.state,
                "cached": job.cached,
                "attempts": job.attempts,
                "error": job.error,
            },
        )

    def _publish_end(self, job: JobRecord) -> None:
        self._publish(job.job_id, {"event": "end", "job": job.to_dict()})

    # -- scheduling / execution -----------------------------------------------

    async def _scheduler(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self.jobs[job_id]
            if job.cancel_requested or job.is_terminal:
                continue
            try:
                if job.kind == SCORE:
                    await self._execute_score(job)
                else:
                    await self._execute(job)
            except Exception as exc:  # defensive: a scheduler must survive
                job.state = FAILED
                job.error = f"internal scheduler error: {exc!r}"
                job.finished_at = time.time()
                self._publish_status(job)
                self._publish_end(job)

    async def _execute(self, job: JobRecord) -> None:
        """Run one job to a terminal state, retrying revoked attempts."""
        context = make_context()
        while True:
            job.attempts += 1
            job.state = RUNNING
            job.started_at = time.time()
            self._publish_status(job)

            progress = context.Queue()
            process = context.Process(
                target=run_job_worker,
                args=(
                    progress,
                    job.nf_spec,
                    job.config,
                    job.num_packets,
                    self.heartbeat_interval,
                ),
                daemon=True,
            )
            process.start()
            lease = WorkerLease(
                process,
                job_timeout=self.job_timeout,
                lease_timeout=self.lease_timeout,
            )
            self._leases[job.job_id] = lease
            try:
                outcome = await self._drain(job, progress, lease)
            finally:
                lease.revoke()
                self._leases.pop(job.job_id, None)
                progress.close()

            if outcome == "done":
                return
            if outcome == "cancelled":
                job.state = CANCELLED
                job.finished_at = time.time()
                self._publish_status(job)
                self._publish_end(job)
                return
            # Revoked ("timeout"/"lease") or crashed ("error"): bounded retry.
            if job.attempts >= job.max_attempts:
                job.state = FAILED
                job.finished_at = time.time()
                self._publish_status(job)
                self._publish_end(job)
                return
            self._publish_status(job)  # announce the retry

    def _poll_event(self, progress):
        """Blocking poll (runs in the executor): one event or the sentinel."""
        import queue as queue_module

        try:
            return progress.get(True, self.poll_interval)
        except queue_module.Empty:
            return _NO_EVENT

    async def _drain(self, job: JobRecord, progress, lease: WorkerLease) -> str:
        """Pump worker events until a terminal outcome for this attempt."""
        loop = asyncio.get_running_loop()
        while True:
            if job.cancel_requested:
                return "cancelled"
            reason = lease.overdue()
            if reason is not None:
                job.error = (
                    f"attempt {job.attempts} revoked ({reason}): "
                    f"ran {lease.elapsed():.1f}s"
                )
                return reason

            event = await loop.run_in_executor(None, self._poll_event, progress)
            if event is _NO_EVENT:
                if not lease.alive():
                    # Exited without a terminal event: crashed hard (OOM,
                    # signal).  One more poll already drained the queue.
                    job.error = (
                        f"attempt {job.attempts}: worker exited without a result "
                        f"(exitcode {lease.process.exitcode})"
                    )
                    return "error"
                continue

            lease.touch()
            kind, payload = event
            if kind == "heartbeat":
                continue
            if kind == "round":
                job.rounds.append(payload)
                self._publish(
                    job.job_id,
                    {"event": "round", "job_id": job.job_id, "round": payload},
                )
                continue
            if kind == "error":
                job.error = f"attempt {job.attempts} raised:\n{payload}"
                return "error"
            if kind == "done":
                self._finish(job, payload)
                return "done"

    async def _execute_score(self, job: JobRecord) -> None:
        """Run one score job in an executor thread.

        Score jobs carry no leased worker process: the heavy halves
        (analysis, distillation) are store-first and the streaming half is
        cancellation-polled between batches, so a thread keeps the event
        loop free while ``emit`` fans ``signatures``/``window`` events into
        the job's NDJSON stream via ``call_soon_threadsafe``.
        """
        loop = asyncio.get_running_loop()
        job.attempts += 1
        job.state = RUNNING
        job.started_at = time.time()
        self._publish_status(job)

        def emit(kind: str, payload: dict) -> None:
            loop.call_soon_threadsafe(
                self._publish,
                job.job_id,
                {"event": kind, "job_id": job.job_id, kind: payload},
            )

        def run() -> dict:
            return run_score_job(
                job.nf_spec,
                CastanConfig.from_dict(job.config),
                job.traffic or {},
                num_packets=job.num_packets,
                store=self.store,
                options=ScorerOptions(**(job.scorer_options or {})),
                emit=emit,
                should_cancel=lambda: job.cancel_requested,
            )

        try:
            summary = await loop.run_in_executor(None, run)
        except Exception as exc:
            job.state = FAILED
            job.error = f"score job raised: {exc!r}"
        else:
            job.state = CANCELLED if summary.get("cancelled") else DONE
            job.result_summary = summary
        job.finished_at = time.time()
        self._publish_status(job)
        self._publish_end(job)

    def _finish(self, job: JobRecord, result) -> None:
        """Persist a successful result and settle the job."""
        meta = self.store.put(
            job.cache_key,
            result,
            perf=perf_record(result, label=f"service:{job.job_id}"),
        )
        job.state = DONE
        job.result_summary = result_summary(result)
        job.perf = meta["perf"]
        job.finished_at = time.time()
        self._publish_status(job)
        self._publish_end(job)
