"""Synthesis-as-a-service: async job server + content-addressed result store.

The one-shot CLI pipeline (``Castan.analyze``) packaged as a long-running
analysis service (ROADMAP item 1):

* :mod:`repro.service.store` — results keyed by
  ``sha256(config.content_hash() : nf.fingerprint() : num_packets)``; an
  unchanged resubmission is a cache hit served from disk, with the original
  run's ``BENCH_symbex.json``-style perf record riding along;
* :mod:`repro.service.server` — the asyncio job core: bounded-concurrency
  scheduling, per-job worker processes under heartbeat
  :class:`~repro.parallel.lease.WorkerLease` supervision, per-job timeout,
  bounded retry, graceful cancellation, and live per-round progress fan-out;
* :mod:`repro.service.http` / :mod:`repro.service.client` — the stdlib REST
  transport (NDJSON event streaming) and its blocking client;
* :mod:`repro.service.worker` — the per-job process entry point (the same
  :func:`~repro.parallel.portfolio.analyze_one_nf` the portfolio runner
  uses, so served results are produced by identical code).

Start a server (see ``docs/SERVICE.md`` for the full walkthrough)::

    python -m repro.service --port 8321 --store /tmp/repro-store

and talk to it with ``tools/repro_submit.py`` / ``tools/repro_status.py``
or :class:`~repro.service.client.ServiceClient`.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobRecord
from repro.service.server import SynthesisService
from repro.service.store import ResultStore, canonical_result_digest, result_key

__all__ = [
    "JobRecord",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "SynthesisService",
    "canonical_result_digest",
    "result_key",
]
