"""``python -m repro.service`` — run the synthesis job server.

The store location comes from ``--store``, falling back to the
``REPRO_SERVICE_STORE`` environment variable, falling back to
``.repro-store`` in the working directory.  ``--port 0`` binds an
ephemeral port (printed on startup), which is what the smoke tooling uses.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os

from repro.service.http import serve
from repro.service.server import SynthesisService
from repro.service.store import ResultStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8321, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--store",
        default=None,
        help="result-store directory (default: $REPRO_SERVICE_STORE or ./.repro-store)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="max concurrently running analyses"
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=600.0,
        help="per-job wall-clock budget in seconds (<= 0 disables)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="revoke a worker that stops heartbeating for this long (<= 0 disables)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries after a revoked/crashed attempt (attempts = retries + 1)",
    )
    return parser


async def run(args: argparse.Namespace) -> None:
    store_root = args.store or os.environ.get("REPRO_SERVICE_STORE") or ".repro-store"
    store = ResultStore(store_root)
    service = SynthesisService(
        store,
        max_concurrent_jobs=args.jobs,
        job_timeout=args.job_timeout if args.job_timeout > 0 else None,
        lease_timeout=args.lease_timeout if args.lease_timeout > 0 else None,
        max_attempts=args.retries + 1,
    )
    server = await serve(service, host=args.host, port=args.port)
    host, port = server.sockets[0].getsockname()[:2]
    print(f"repro.service listening on http://{host}:{port} (store: {store.root})", flush=True)
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.shutdown()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(run(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
