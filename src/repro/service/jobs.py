"""The service's job model: one submitted ``(nf_spec, config)`` analysis.

A job's life cycle::

    queued ──▶ running ──▶ done
      │           │  └────▶ failed     (after bounded retries)
      └───────────┴───────▶ cancelled  (client-requested revocation)

plus the short-circuit every content-addressed system exists for:
``queued ──▶ done (cached=True)`` when the store already holds the job's
address — a cache hit never enters the scheduler at all.

Jobs carry their own event history (the ``rounds`` streamed so far,
status transitions, terminal summary), so a late stream subscriber can
replay everything that already happened and then follow live.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Job states (strings, not an Enum: they travel as JSON).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = (DONE, FAILED, CANCELLED)


#: Job kinds.  ``analyze`` runs the engine in a leased worker process;
#: ``score`` runs the scoring pipeline (store-first analysis → distilled
#: signatures → windowed stream scoring) in an executor thread.
ANALYZE = "analyze"
SCORE = "score"


@dataclass
class JobRecord:
    """Everything the server tracks about one submitted analysis."""

    job_id: str
    nf_spec: str
    config: dict  # canonical CastanConfig dict (what the worker rebuilds)
    num_packets: int | None
    cache_key: str
    config_hash: str
    nf_fingerprint: str
    kind: str = ANALYZE
    #: Score jobs only: the traffic spec (``pcap_bytes``/``pcap_path``/
    #: ``synthetic``) and scorer knob overrides.  Not part of :meth:`to_dict`
    #: — pcap bytes are neither JSON-safe nor interesting to job listings.
    traffic: dict | None = None
    scorer_options: dict | None = None
    state: str = QUEUED
    cached: bool = False
    attempts: int = 0
    max_attempts: int = 2
    error: str = ""
    cancel_requested: bool = False
    rounds: list[dict] = field(default_factory=list)
    result_summary: dict | None = None
    perf: dict | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        """JSON-safe view served by the job endpoints."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "nf": self.nf_spec,
            "num_packets": self.num_packets,
            "state": self.state,
            "cached": self.cached,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error": self.error,
            "cache_key": self.cache_key,
            "config_hash": self.config_hash,
            "nf_fingerprint": self.nf_fingerprint,
            "rounds": len(self.rounds),
            "result": self.result_summary,
            "perf": self.perf,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
