"""Blocking stdlib client for the synthesis service.

Used by the ``tools/repro_submit.py`` / ``tools/repro_status.py`` CLIs, the
``service-smoke`` CI job and the tier-1 service tests.  One
``http.client.HTTPConnection`` per request (the server closes connections
after each response); :meth:`ServiceClient.stream` holds its connection
open and yields NDJSON events as the server writes them.
"""

from __future__ import annotations

import base64
import http.client
import json
import pickle
import time
from pathlib import Path
from typing import Iterator

from repro.core.castan import CastanResult


class ServiceError(RuntimeError):
    """An error response from the service (status + server message).

    Transport failures — connection refused, a stream cut mid-flight —
    surface as ``status == 0`` so callers can tell "the server said no"
    from "there is no server" without catching raw ``OSError``.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}" if status else message)
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to a running :mod:`repro.service` server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except OSError as exc:
            raise ServiceError(
                0, f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()
        if response.headers.get_content_type() == "application/octet-stream":
            if response.status != 200:
                raise ServiceError(response.status, raw.decode(errors="replace"))
            return raw
        data = json.loads(raw) if raw else {}
        if response.status != 200:
            raise ServiceError(response.status, data.get("error", raw.decode(errors="replace")))
        return data

    # -- API ------------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(
        self,
        nf_spec: str,
        config: dict | None = None,
        num_packets: int | None = None,
    ) -> dict:
        """Submit one job; returns its job dict (``cached`` marks a hit)."""
        body: dict = {"nf": nf_spec}
        if config:
            body["config"] = config
        if num_packets is not None:
            body["num_packets"] = num_packets
        return self._request("POST", "/jobs", body)

    def submit_many(
        self,
        nf_specs: list[str],
        config: dict | None = None,
        num_packets: int | None = None,
    ) -> list[dict]:
        """Submit a portfolio of jobs in one request (one job per NF)."""
        body: dict = {"nfs": list(nf_specs)}
        if config:
            body["config"] = config
        if num_packets is not None:
            body["num_packets"] = num_packets
        return self._request("POST", "/jobs", body)["jobs"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def result_meta(self, job_id: str) -> dict:
        """Stored metadata (summary + perf record) of a finished job."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def result(self, job_id: str) -> CastanResult:
        """The full stored :class:`CastanResult` of a finished job."""
        return pickle.loads(self._request("GET", f"/jobs/{job_id}/result.pkl"))

    def store_keys(self) -> list[str]:
        return self._request("GET", "/store")["keys"]

    def store_meta(self, key: str) -> dict:
        return self._request("GET", f"/store/{key}")

    def signature_keys(self) -> list[str]:
        """Keys of every distilled signature set on the store's sig shelf."""
        return self._request("GET", "/signatures")["keys"]

    def score(
        self,
        nf_spec: str,
        traffic: dict,
        config: dict | None = None,
        num_packets: int | None = None,
        options: dict | None = None,
    ) -> dict:
        """Submit one score job; returns its job dict (stream for windows).

        ``traffic`` is ``{"synthetic": N, "seed": s}`` for an in-class
        stream, ``{"pcap_path": ...}`` to upload a local capture (read and
        base64-encoded here — the server never touches client paths), or
        ``{"pcap_b64": ...}`` if the caller already encoded one.
        """
        traffic = dict(traffic)
        if "pcap_path" in traffic:
            raw = Path(traffic.pop("pcap_path")).read_bytes()
            traffic["pcap_b64"] = base64.b64encode(raw).decode()
        body: dict = {"nf": nf_spec, "traffic": traffic}
        if config:
            body["config"] = config
        if num_packets is not None:
            body["num_packets"] = num_packets
        if options:
            body["options"] = options
        return self._request("POST", "/score", body)

    def stream(self, job_id: str, timeout: float | None = None) -> Iterator[dict]:
        """Yield the job's NDJSON events (history replay, then live).

        The iterator ends after the terminal ``"end"`` event; ``timeout``
        bounds the *whole* stream (falls back to the client default).  A
        stream that dies before its terminal event — the server crashed,
        the connection dropped — raises :class:`ServiceError` (status 0)
        instead of ending silently, so a consumer can never mistake a
        truncated stream for a finished job.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout if timeout is not None else self.timeout
        )
        try:
            try:
                connection.request("GET", f"/jobs/{job_id}/stream")
                response = connection.getresponse()
            except OSError as exc:
                raise ServiceError(
                    0, f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            if response.status != 200:
                raw = response.read()
                data = json.loads(raw) if raw else {}
                raise ServiceError(response.status, data.get("error", ""))
            try:
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    yield event
                    if event.get("event") == "end":
                        return
            except OSError as exc:
                raise ServiceError(
                    0, f"stream for {job_id} dropped mid-flight: {exc}"
                ) from exc
            raise ServiceError(
                0, f"stream for {job_id} ended before its terminal event"
            )
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Follow the job's stream to its end; returns the final job dict."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        for event in self.stream(job_id, timeout=timeout):
            if event.get("event") == "end":
                return event["job"]
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} did not finish within {timeout}s")
        raise ServiceError(500, f"stream for {job_id} ended without a terminal event")
