"""The per-job worker process: one analysis, streamed over a queue.

:func:`run_job_worker` is the ``multiprocessing.Process`` target the
synthesis server spawns per job attempt.  It rebuilds the config from its
canonical dict, runs the *same* entry point the portfolio uses
(:func:`repro.parallel.portfolio.analyze_one_nf` — so a served result is
produced by exactly the code a local run would use), and reports back over
a single multiprocessing queue as ``(kind, payload)`` tuples:

``("round", dict)``
    one :class:`~repro.symbex.batch.RoundStats` as a plain dict, emitted
    live as each search round completes;
``("heartbeat", float)``
    proof of life from a daemon thread, every ``heartbeat_interval``
    seconds — so the server's :class:`~repro.parallel.lease.WorkerLease`
    can tell a long solver round from a wedged worker;
``("done", CastanResult)``
    the terminal success event (the result rides the queue's pickle path);
``("error", str)``
    the terminal failure event, carrying the traceback text.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import asdict


def run_job_worker(
    queue,
    nf_spec: str,
    config_dict: dict,
    num_packets: int | None,
    heartbeat_interval: float = 1.0,
) -> None:
    """Process target: analyze ``nf_spec`` and stream progress over ``queue``."""
    stop = threading.Event()

    def emit_heartbeats() -> None:
        while not stop.wait(heartbeat_interval):
            queue.put(("heartbeat", time.time()))

    beater = threading.Thread(target=emit_heartbeats, daemon=True)
    beater.start()
    try:
        from repro.core.config import CastanConfig
        from repro.parallel.portfolio import analyze_one_nf

        config = CastanConfig.from_dict(config_dict)
        result = analyze_one_nf(
            nf_spec,
            config,
            num_packets=num_packets,
            on_round=lambda round_stats: queue.put(("round", asdict(round_stats))),
        )
        queue.put(("done", result))
    except BaseException:
        queue.put(("error", traceback.format_exc()))
    finally:
        stop.set()
