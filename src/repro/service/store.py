"""Content-addressed persistence of CASTAN results (the service's cache).

An analysis is a pure function of ``(NF, CastanConfig, num_packets)``: the
engine is deterministic, parallel schedules are worker-count-invariant
(PR 3) and every exec tier is byte-identical (PR 5/6).  That makes results
*content-addressable*: the store keys each :class:`~repro.core.castan.CastanResult`
by a SHA-256 over :meth:`CastanConfig.content_hash()
<repro.core.config.CastanConfig.content_hash>`, the
:meth:`NetworkFunction.fingerprint()
<repro.nf.base.NetworkFunction.fingerprint>` of the NF it analyzed, and the
resolved packet count — so resubmitting an unchanged job is a cache hit
that costs one directory probe, and *any* change to the NF's code, its
metadata or any config knob produces a different address.

On disk, each entry is a directory named by its key::

    <root>/<key[:2]>/<key>/result.pkl   # the pickled CastanResult
    <root>/<key[:2]>/<key>/meta.json    # summary + BENCH_symbex-style perf record

``meta.json`` carries the per-job perf record (states/sec, wall seconds,
rounds) in the same shape as a ``BENCH_symbex.json`` trajectory entry, so a
served cache hit returns the measured performance of the original run for
free instead of re-measuring in CI.

Identity is compared through :func:`canonical_result_digest`, which hashes
every deterministic field of a result and deliberately excludes wall-clock
(``analysis_seconds``) and scheduling provenance (``parallel_mode`` /
``workers``) — the fields the PR 3 identity guarantee says may differ while
the analysis is "the same".
"""

from __future__ import annotations

import hashlib
import json
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path

from repro.core.castan import CastanResult
from repro.core.config import CastanConfig
from repro.core.workload import workload_digest
from repro.nf.base import NetworkFunction

#: Version tag of the result key derivation *and* the stored layout.  Bump
#: on any change to either: old entries then simply miss instead of being
#: deserialised wrongly.
STORE_VERSION = "castan-result-v1"


def result_key(config: CastanConfig, nf_fingerprint: str, num_packets: int | None) -> str:
    """The content address of one analysis."""
    payload = f"{STORE_VERSION}:{config.content_hash()}:{nf_fingerprint}:{num_packets}"
    return hashlib.sha256(payload.encode()).hexdigest()


def canonical_result_digest(result: CastanResult) -> str:
    """SHA-256 over every deterministic field of a result.

    Two runs of the same ``(NF, config, num_packets)`` must produce equal
    digests (the cache-hit identity test in ``tests/test_service.py`` holds
    the store to exactly that); timing and worker provenance are excluded
    because they legitimately differ between byte-identical analyses.
    """
    havoc = result.havoc_outcome
    payload = {
        "nf_name": result.nf_name,
        "packets": [
            [p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.protocol]
            for p in result.packets
        ],
        "workload_digest": workload_digest(result.packets),
        "metrics": asdict(result.metrics),
        "states_explored": result.states_explored,
        "completed_paths": result.completed_paths,
        "forks": result.forks,
        "best_state_cost": result.best_state_cost,
        "solver_status": result.solver_status,
        "contention_sets_used": result.contention_sets_used,
        "search_mode": result.search_mode,
        "search_rounds": result.search_rounds,
        "havocs_reconciled": len(havoc.reconciled) if havoc else 0,
        "notes": result.notes,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def result_summary(result: CastanResult) -> dict:
    """JSON-safe summary of a result (what the job endpoints return)."""
    return {
        "nf": result.nf_name,
        "summary": result.summary(),
        "packets": [
            [p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.protocol]
            for p in result.packets
        ],
        "flows": result.unique_flows,
        "best_state_cost": result.best_state_cost,
        "states_explored": result.states_explored,
        "search_mode": result.search_mode,
        "search_rounds": result.search_rounds,
        "solver_status": result.solver_status,
        "workload_digest": workload_digest(result.packets),
        "result_digest": canonical_result_digest(result),
    }


def perf_record(result: CastanResult, label: str = "service") -> dict:
    """A ``BENCH_symbex.json``-trajectory-style perf record for one job."""
    wall = result.analysis_seconds
    return {
        "label": label,
        "nf": result.nf_name,
        "states_explored": result.states_explored,
        "wall_seconds": round(wall, 6),
        "states_per_sec": round(result.states_explored / wall, 3) if wall > 0 else None,
        "best_state_cost": result.best_state_cost,
        "search_rounds": result.search_rounds,
    }


class ResultStore:
    """Filesystem-backed content-addressed store of analysis results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- addressing -----------------------------------------------------------

    def key_for(
        self, nf: NetworkFunction, config: CastanConfig, num_packets: int | None = None
    ) -> str:
        """Content address of analysing ``nf`` under ``config``.

        ``num_packets`` is resolved the same way :meth:`Castan.analyze`
        resolves it, so an explicit count equal to the NF default addresses
        the same entry as the default.
        """
        resolved = (
            num_packets
            if num_packets is not None
            else config.packets_for(nf.castan_packet_count)
        )
        return result_key(config, nf.fingerprint(), resolved)

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    # -- access ---------------------------------------------------------------

    def has(self, key: str) -> bool:
        entry = self._entry_dir(key)
        return (entry / "result.pkl").exists() and (entry / "meta.json").exists()

    def get(self, key: str) -> tuple[CastanResult, dict] | None:
        """Load ``(result, meta)`` for ``key``, or ``None`` when absent."""
        if not self.has(key):
            return None
        entry = self._entry_dir(key)
        result = pickle.loads((entry / "result.pkl").read_bytes())
        meta = json.loads((entry / "meta.json").read_text())
        return result, meta

    def get_meta(self, key: str) -> dict | None:
        if not self.has(key):
            return None
        return json.loads((self._entry_dir(key) / "meta.json").read_text())

    def put(self, key: str, result: CastanResult, perf: dict | None = None) -> dict:
        """Persist a result under ``key``; returns the written metadata.

        Writes are atomic (tempfile + rename within the entry's parent), so
        a concurrently reading server never observes a half-written entry,
        and a crash mid-write leaves no entry at all.  Re-putting an
        existing key is allowed and idempotent by construction: the content
        address pins the inputs, and deterministic analysis pins the output.
        """
        entry = self._entry_dir(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "store_version": STORE_VERSION,
            "key": key,
            "result": result_summary(result),
            "perf": perf or perf_record(result),
        }
        with tempfile.TemporaryDirectory(dir=self.root) as staging:
            staged = Path(staging) / key
            staged.mkdir()
            (staged / "result.pkl").write_bytes(
                pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            )
            (staged / "meta.json").write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
            if not entry.exists():  # lost the race: identical content either way
                staged.replace(entry)
        return meta

    def keys(self) -> list[str]:
        """Every stored key (sorted, for stable listings)."""
        return sorted(
            path.name
            for shard in self.root.iterdir()
            if shard.is_dir() and len(shard.name) == 2
            for path in shard.iterdir()
            if path.is_dir()
        )

    def __len__(self) -> int:
        return len(self.keys())

    # -- signature shelf ------------------------------------------------------
    #
    # Distilled signature sets (repro.scoring) live beside the results they
    # were distilled from, addressed by SignatureSet.store_key() — a function
    # of the NF fingerprint and the source result's canonical digest, the
    # same derivation discipline as result_key().  The shelf is a sibling
    # directory ("sig/", three characters), so keys() — which only walks
    # two-character shards — never lists signature entries as results.

    def _signature_path(self, key: str) -> Path:
        return self.root / "sig" / key[:2] / f"{key}.json"

    def put_signatures(self, signature_set) -> str:
        """Persist one distilled signature set; returns its store key."""
        key = signature_set.store_key()
        path = self._signature_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False
        ) as staged:
            staged.write(signature_set.to_json())
        Path(staged.name).replace(path)
        return key

    def get_signatures(self, key: str):
        """Load a stored signature set by key, or ``None`` when absent."""
        from repro.scoring.signatures import signature_set_from_json

        path = self._signature_path(key)
        if not path.exists():
            return None
        return signature_set_from_json(path.read_text())

    def signature_keys(self) -> list[str]:
        """Every stored signature-set key (sorted)."""
        shelf = self.root / "sig"
        if not shelf.is_dir():
            return []
        return sorted(path.stem for path in shelf.glob("*/*.json"))
