"""Stateful L4 load balancer NFs (§5.1), one per associative container.

The LB translates the virtual IP (VIP) to a backend (direct IP): packets
whose destination is not the VIP are dropped without any data-structure
access; packets of known connections are forwarded to their recorded
backend; new connections pick a backend round-robin and are remembered.
Four variants store that per-flow state in a chained hash table, a hash
ring, an unbalanced binary tree and a red-black tree respectively.
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.hashing.functions import FLOW_HASH_BITS, FLOW_HASH_DIALECT_SOURCE, flow_hash16
from repro.ir.module import Module
from repro.net.packet import Packet
from repro.nf.assoc import CONTAINERS
from repro.nf.base import NetworkFunction
from repro.nf.common import (
    HASH_TABLE_BUCKETS,
    LB_BACKENDS,
    VIP_ADDRESS,
    lb_packet_defaults,
    lb_workload_hints,
    make_flow_packet,
)

_LB_HEADER = f"""
VIP = {VIP_ADDRESS}
LB_BACKENDS = {LB_BACKENDS}
"""

_LB_PREAMBLE = """
    if protocol != 17 and protocol != 6:
        return 0
    if dst_ip != VIP:
        return 0
    key = src_ip | (src_port << 32) | (dst_port << 48)
"""

_LB_PROCESS = {
    "hash-table": f"""
def process(src_ip, dst_ip, src_port, dst_port, protocol):
{_LB_PREAMBLE}
    hv = castan_havoc(key, flow_hash16(key))
    bucket = hv & {HASH_TABLE_BUCKETS - 1}
    node = ht_lookup(key, bucket)
    if node != 0:
        return ht_value[node - 1]
    backend = (lb_rr[0] % LB_BACKENDS) + 1
    lb_rr[0] = lb_rr[0] + 1
    inserted = ht_insert(key, backend, bucket)
    if inserted == 0:
        return 0
    return backend
""",
    "hash-ring": f"""
def process(src_ip, dst_ip, src_port, dst_port, protocol):
{_LB_PREAMBLE}
    hv = castan_havoc(key, flow_hash16(key))
    found = ring_find_slot(key, hv)
    if found == 0:
        return 0
    slot = found - 1
    if ring_key[slot] == key:
        return ring_value[slot]
    backend = (lb_rr[0] % LB_BACKENDS) + 1
    lb_rr[0] = lb_rr[0] + 1
    ring_key[slot] = key
    ring_value[slot] = backend
    ring_count[0] = ring_count[0] + 1
    return backend
""",
    "unbalanced-tree": f"""
def process(src_ip, dst_ip, src_port, dst_port, protocol):
{_LB_PREAMBLE}
    node = bst_find(key)
    if node != 0:
        return bst_value[node]
    backend = (lb_rr[0] % LB_BACKENDS) + 1
    lb_rr[0] = lb_rr[0] + 1
    inserted = bst_insert(key, backend)
    if inserted == 0:
        return 0
    return backend
""",
    "red-black-tree": f"""
def process(src_ip, dst_ip, src_port, dst_port, protocol):
{_LB_PREAMBLE}
    node = rb_find(key)
    if node != 0:
        return rb_value[node]
    backend = (lb_rr[0] % LB_BACKENDS) + 1
    lb_rr[0] = lb_rr[0] + 1
    inserted = rb_insert(key, backend)
    if inserted == 0:
        return 0
    return backend
""",
}

_CASTAN_PACKET_COUNTS = {
    "hash-table": 30,
    "hash-ring": 40,
    "unbalanced-tree": 30,
    "red-black-tree": 30,
}


def manual_lb_unbalanced_workload(count: int) -> list[Packet]:
    """Monotonically increasing flow keys: skews the tree into a list."""
    packets = []
    for i in range(count):
        packets.append(
            make_flow_packet(0x0B000001, VIP_ADDRESS, 10000, 1024 + i)
        )
    return packets


def build_lb(data_structure: str) -> NetworkFunction:
    """Build one LB variant; ``data_structure`` is a key of ``CONTAINERS``."""
    try:
        container = CONTAINERS[data_structure]
    except KeyError:
        raise ValueError(
            f"unknown LB data structure {data_structure!r}; options: {sorted(CONTAINERS)}"
        ) from None

    module = Module(f"lb-{data_structure}")
    container["declare"](module)
    module.add_region("lb_rr", 1, 8)

    source_parts = [_LB_HEADER, container["source"], _LB_PROCESS[data_structure]]
    if container["uses_hash"]:
        source_parts.insert(1, FLOW_HASH_DIALECT_SOURCE)
    compile_nf(module, "\n".join(source_parts), entry="process")

    manual = manual_lb_unbalanced_workload if data_structure == "unbalanced-tree" else None
    return NetworkFunction(
        name=f"lb-{data_structure}",
        module=module,
        description=f"Stateful VIP-to-backend load balancer over a {data_structure}.",
        nf_class="lb",
        data_structure=data_structure,
        hash_functions={"flow_hash16": flow_hash16} if container["uses_hash"] else {},
        hash_output_bits={"flow_hash16": FLOW_HASH_BITS} if container["uses_hash"] else {},
        packet_defaults=lb_packet_defaults(),
        workload_hints=lb_workload_hints(),
        castan_packet_count=_CASTAN_PACKET_COUNTS[data_structure],
        manual_workload=manual,
        contention_regions=list(container["contention_regions"]),
    )
