"""Stateful firewall over a connection-tracking ring buffer.

The firewall admits outbound traffic (sources inside the NAT's 10.0.0.0/8
network) unconditionally and inbound traffic only when it matches a tracked
connection, the classic stateful-filter policy.  Connections live in a
fixed-size **ring buffer** in insertion order: lookups scan the occupied
window, and when the ring is full an insertion first performs a **full-ring
eviction walk** that compacts out expired entries (hits refresh a
connection's expiry, so expired entries do not stay sorted and a cheap
pop-from-head is not enough).

Two adversarial gradients follow from that layout:

* **fill the ring** — every distinct flow appends one entry, so lookups
  (and the eviction walks that full-table insertions trigger) scan further
  and further;
* **partial-key collisions** — entries store the connection's address word
  and port word separately and the scan short-circuits on the address, so
  flows that share one source address but differ in their ports force the
  scan to load *both* words of every candidate entry.

CASTAN discovers the combination (many distinct connections from one
address) automatically; random traffic with scattered addresses pays only
the single-word scan.
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.ir.module import Module
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.nf.common import (
    EXTERNAL_SERVER,
    FIREWALL_SLOTS,
    FIREWALL_TTL_TICKS,
    INTERNAL_PREFIX_OCTET,
    firewall_packet_defaults,
    firewall_workload_hints,
    make_flow_packet,
)

FIREWALL_SOURCE = f"""
FW_SLOTS = {FIREWALL_SLOTS}
FW_MASK = {FIREWALL_SLOTS - 1}
FW_TTL = {FIREWALL_TTL_TICKS}
INTERNAL_OCTET = {INTERNAL_PREFIX_OCTET}


def fw_find(addr, ports, now):
    count = fw_count[0]
    head = fw_head[0]
    i = 0
    while i < count:
        slot = (head + i) & FW_MASK
        if fw_addr[slot] == addr:
            if fw_ports[slot] == ports:
                if fw_expiry[slot] > now:
                    return slot + 1
        i = i + 1
    return 0


def fw_sweep(now):
    count = fw_count[0]
    head = fw_head[0]
    kept = 0
    i = 0
    while i < count:
        slot = (head + i) & FW_MASK
        if fw_expiry[slot] > now:
            dst = (head + kept) & FW_MASK
            if dst != slot:
                fw_addr[dst] = fw_addr[slot]
                fw_ports[dst] = fw_ports[slot]
                fw_expiry[dst] = fw_expiry[slot]
            kept = kept + 1
        i = i + 1
    fw_count[0] = kept
    return count - kept


def process(src_ip, dst_ip, src_port, dst_port, protocol):
    if protocol != 17 and protocol != 6:
        return 0
    now = fw_clock[0] + 1
    fw_clock[0] = now
    outbound = 0
    if (src_ip >> 24) == INTERNAL_OCTET:
        outbound = 1
        addr = src_ip
        ports = (src_port << 16) | dst_port
    else:
        if (dst_ip >> 24) != INTERNAL_OCTET:
            return 0
        addr = dst_ip
        ports = (dst_port << 16) | src_port
    found = fw_find(addr, ports, now)
    if found != 0:
        fw_expiry[found - 1] = now + FW_TTL
        return 1
    if outbound == 0:
        return 0
    if fw_count[0] >= FW_SLOTS:
        swept = fw_sweep(now)
        if fw_count[0] >= FW_SLOTS:
            fw_head[0] = (fw_head[0] + 1) & FW_MASK
            fw_count[0] = fw_count[0] - 1
    slot = (fw_head[0] + fw_count[0]) & FW_MASK
    fw_addr[slot] = addr
    fw_ports[slot] = ports
    fw_expiry[slot] = now + FW_TTL
    fw_count[0] = fw_count[0] + 1
    return 1
"""


def manual_firewall_workload(count: int) -> list[Packet]:
    """Distinct connections from one internal host: each packet appends an
    entry that shares the stored address word with every other entry, so
    lookups load both words of every slot they scan."""
    src_ip = (INTERNAL_PREFIX_OCTET << 24) | 0x000101
    return [
        make_flow_packet(src_ip, EXTERNAL_SERVER, 10000, 1024 + i) for i in range(count)
    ]


def build_firewall() -> NetworkFunction:
    """Build the connection-tracking firewall NF."""
    module = Module("fw-conntrack")
    module.add_region("fw_addr", FIREWALL_SLOTS, 8)
    module.add_region("fw_ports", FIREWALL_SLOTS, 8)
    module.add_region("fw_expiry", FIREWALL_SLOTS, 8)
    module.add_region("fw_head", 1, 8)
    module.add_region("fw_count", 1, 8)
    module.add_region("fw_clock", 1, 8)
    compile_nf(module, FIREWALL_SOURCE, entry="process")
    return NetworkFunction(
        name="fw-conntrack",
        module=module,
        description="Stateful firewall tracking connections in a TTL ring buffer.",
        nf_class="fw",
        data_structure="ring-buffer",
        packet_defaults=firewall_packet_defaults(),
        workload_hints=firewall_workload_hints(),
        castan_packet_count=25,
        manual_workload=manual_firewall_workload,
        contention_regions=["fw_addr", "fw_ports", "fw_expiry"],
        notes=(
            "Lookup scans the occupied ring window; full-table insertions walk "
            "the whole ring to evict expired entries."
        ),
    )
