"""NF-dialect sources and region layouts for the associative containers.

The NAT and LB NFs store per-flow state in one of four containers (§5.1):
a chained hash table, an open-addressing hash ring, an unbalanced binary
search tree, and a red-black tree.  Each container is defined here as a
pair of (dialect source with helper functions, region declarations) so the
NAT and LB front halves can share them.  All node pools are statically
allocated arrays indexed by small integers, exactly as the paper's C NFs
allocate their state up front.
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.nf.common import (
    HASH_RING_ENTRY_BYTES,
    HASH_RING_SIZE,
    HASH_TABLE_BUCKETS,
    HASH_TABLE_MAX_FLOWS,
    TREE_MAX_NODES,
)

# -- chained hash table -------------------------------------------------------------
#
# `ht_bucket[b]` holds (node index + 1) of the chain head, 0 when empty.
# Nodes live in parallel arrays indexed 0..MAX-1 and are never freed (flows
# are only added, as in the paper's measurement runs).

HASH_TABLE_SOURCE = f"""
HT_BUCKETS = {HASH_TABLE_BUCKETS}
HT_MAX_FLOWS = {HASH_TABLE_MAX_FLOWS}


def ht_lookup(key, bucket):
    node = ht_bucket[bucket]
    while node != 0:
        if ht_key[node - 1] == key:
            return node
        node = ht_next[node - 1]
    return 0


def ht_insert(key, value, bucket):
    count = ht_count[0]
    if count >= HT_MAX_FLOWS:
        return 0
    ht_key[count] = key
    ht_value[count] = value
    ht_next[count] = ht_bucket[bucket]
    ht_bucket[bucket] = count + 1
    ht_count[0] = count + 1
    return count + 1
"""


def declare_hash_table_regions(module: Module) -> None:
    module.add_region("ht_bucket", HASH_TABLE_BUCKETS, 8)
    module.add_region("ht_key", HASH_TABLE_MAX_FLOWS, 8)
    module.add_region("ht_value", HASH_TABLE_MAX_FLOWS, 8)
    module.add_region("ht_next", HASH_TABLE_MAX_FLOWS, 8)
    module.add_region("ht_count", 1, 8)


# -- open-addressing hash ring ---------------------------------------------------------
#
# One cache-line-sized entry per slot (the key); values live in a parallel
# array touched only on hit/insert.  key == 0 marks an empty slot.

HASH_RING_SOURCE = f"""
RING_SIZE = {HASH_RING_SIZE}
RING_MASK = {HASH_RING_SIZE - 1}
RING_MAX_PROBES = 128


def ring_find_slot(key, start):
    slot = start & RING_MASK
    probes = 0
    while probes < RING_MAX_PROBES:
        stored = ring_key[slot]
        if stored == 0:
            return slot + 1
        if stored == key:
            return slot + 1
        slot = (slot + 1) & RING_MASK
        probes = probes + 1
    return 0
"""


def declare_hash_ring_regions(module: Module) -> None:
    module.add_region("ring_key", HASH_RING_SIZE, HASH_RING_ENTRY_BYTES)
    module.add_region("ring_value", HASH_RING_SIZE, 8)
    module.add_region("ring_count", 1, 8)


# -- unbalanced binary search tree ---------------------------------------------------------
#
# Parallel arrays indexed by node id (1-based; 0 is the nil sentinel).
# No rebalancing: insertion order dictates the shape, so ordered keys
# degenerate the tree into a linked list — the attack the paper describes.

UNBALANCED_TREE_SOURCE = f"""
BST_MAX_NODES = {TREE_MAX_NODES}


def bst_find(key):
    node = bst_root[0]
    while node != 0:
        stored = bst_key[node]
        if stored == key:
            return node
        if key < stored:
            node = bst_left[node]
        else:
            node = bst_right[node]
    return 0


def bst_insert(key, value):
    parent = 0
    go_right = 0
    node = bst_root[0]
    while node != 0:
        stored = bst_key[node]
        if stored == key:
            return node
        parent = node
        if key < stored:
            node = bst_left[node]
            go_right = 0
        else:
            node = bst_right[node]
            go_right = 1
    new = bst_count[0] + 1
    if new >= BST_MAX_NODES:
        return 0
    bst_count[0] = new
    bst_key[new] = key
    bst_value[new] = value
    bst_left[new] = 0
    bst_right[new] = 0
    if parent == 0:
        bst_root[0] = new
    else:
        if go_right == 1:
            bst_right[parent] = new
        else:
            bst_left[parent] = new
    return new
"""


def declare_unbalanced_tree_regions(module: Module) -> None:
    module.add_region("bst_root", 1, 8)
    module.add_region("bst_count", 1, 8)
    module.add_region("bst_key", TREE_MAX_NODES, 8)
    module.add_region("bst_value", TREE_MAX_NODES, 8)
    module.add_region("bst_left", TREE_MAX_NODES, 8)
    module.add_region("bst_right", TREE_MAX_NODES, 8)


# -- red-black tree (the std::map stand-in) ----------------------------------------------------
#
# Standard CLRS insertion with recolouring and rotations.  Node 0 is the
# nil sentinel (always black).  Colour 1 = red, 0 = black.

RED_BLACK_TREE_SOURCE = f"""
RB_MAX_NODES = {TREE_MAX_NODES}


def rb_find(key):
    node = rb_root[0]
    while node != 0:
        stored = rb_key[node]
        if stored == key:
            return node
        if key < stored:
            node = rb_left[node]
        else:
            node = rb_right[node]
    return 0


def rb_rotate_left(x):
    y = rb_right[x]
    rb_right[x] = rb_left[y]
    if rb_left[y] != 0:
        rb_parent[rb_left[y]] = x
    rb_parent[y] = rb_parent[x]
    if rb_parent[x] == 0:
        rb_root[0] = y
    else:
        if x == rb_left[rb_parent[x]]:
            rb_left[rb_parent[x]] = y
        else:
            rb_right[rb_parent[x]] = y
    rb_left[y] = x
    rb_parent[x] = y
    return 0


def rb_rotate_right(x):
    y = rb_left[x]
    rb_left[x] = rb_right[y]
    if rb_right[y] != 0:
        rb_parent[rb_right[y]] = x
    rb_parent[y] = rb_parent[x]
    if rb_parent[x] == 0:
        rb_root[0] = y
    else:
        if x == rb_right[rb_parent[x]]:
            rb_right[rb_parent[x]] = y
        else:
            rb_left[rb_parent[x]] = y
    rb_right[y] = x
    rb_parent[x] = y
    return 0


def rb_insert_fixup(z):
    while rb_color[rb_parent[z]] == 1:
        parent = rb_parent[z]
        grand = rb_parent[parent]
        if parent == rb_left[grand]:
            uncle = rb_right[grand]
            if rb_color[uncle] == 1:
                rb_color[parent] = 0
                rb_color[uncle] = 0
                rb_color[grand] = 1
                z = grand
            else:
                if z == rb_right[parent]:
                    z = parent
                    rb_rotate_left(z)
                    parent = rb_parent[z]
                    grand = rb_parent[parent]
                rb_color[parent] = 0
                rb_color[grand] = 1
                rb_rotate_right(grand)
        else:
            uncle = rb_left[grand]
            if rb_color[uncle] == 1:
                rb_color[parent] = 0
                rb_color[uncle] = 0
                rb_color[grand] = 1
                z = grand
            else:
                if z == rb_left[parent]:
                    z = parent
                    rb_rotate_right(z)
                    parent = rb_parent[z]
                    grand = rb_parent[parent]
                rb_color[parent] = 0
                rb_color[grand] = 1
                rb_rotate_left(grand)
    rb_color[rb_root[0]] = 0
    return 0


def rb_insert(key, value):
    parent = 0
    node = rb_root[0]
    while node != 0:
        stored = rb_key[node]
        if stored == key:
            return node
        parent = node
        if key < stored:
            node = rb_left[node]
        else:
            node = rb_right[node]
    new = rb_count[0] + 1
    if new >= RB_MAX_NODES:
        return 0
    rb_count[0] = new
    rb_key[new] = key
    rb_value[new] = value
    rb_left[new] = 0
    rb_right[new] = 0
    rb_parent[new] = parent
    rb_color[new] = 1
    if parent == 0:
        rb_root[0] = new
    else:
        if key < rb_key[parent]:
            rb_left[parent] = new
        else:
            rb_right[parent] = new
    rb_insert_fixup(new)
    return new
"""


def declare_red_black_tree_regions(module: Module) -> None:
    module.add_region("rb_root", 1, 8)
    module.add_region("rb_count", 1, 8)
    module.add_region("rb_key", TREE_MAX_NODES, 8)
    module.add_region("rb_value", TREE_MAX_NODES, 8)
    module.add_region("rb_left", TREE_MAX_NODES, 8)
    module.add_region("rb_right", TREE_MAX_NODES, 8)
    module.add_region("rb_parent", TREE_MAX_NODES, 8)
    module.add_region("rb_color", TREE_MAX_NODES, 8)


# Registry used by the NAT/LB builders: data-structure name -> (source,
# region declarator, lookup/insert helper names, large regions for the
# cache model).
CONTAINERS = {
    "hash-table": {
        "source": HASH_TABLE_SOURCE,
        "declare": declare_hash_table_regions,
        "contention_regions": ["ht_bucket", "ht_key"],
        "uses_hash": True,
    },
    "hash-ring": {
        "source": HASH_RING_SOURCE,
        "declare": declare_hash_ring_regions,
        "contention_regions": ["ring_key"],
        "uses_hash": True,
    },
    "unbalanced-tree": {
        "source": UNBALANCED_TREE_SOURCE,
        "declare": declare_unbalanced_tree_regions,
        "contention_regions": ["bst_key"],
        "uses_hash": False,
    },
    "red-black-tree": {
        "source": RED_BLACK_TREE_SOURCE,
        "declare": declare_red_black_tree_regions,
        "contention_regions": ["rb_key"],
        "uses_hash": False,
    },
}
