"""DPI-style signature matcher over a byte-granular pattern trie.

The simulated packet model carries no payload, so the matcher inspects a
**pseudo-payload**: the 8 bytes of ``(src_ip << 32) | (src_port << 16) |
dst_port``, most-significant byte first — the same "first payload bytes"
role the paper's data-structure NFs give to header fields.  Signatures are
byte strings anchored at offset 0, stored in a statically allocated trie
whose nodes keep up to ``DPI_FANOUT`` (byte, child) pairs in parallel
arrays; matching walks the trie byte by byte, remembering the last
accepting node (like the LPM's best-match walk), and the verdict of the
deepest matched rule decides whether the packet is blocked.

Matching cost grows with descent depth — each level loads the node's child
list and compares the current byte against every stored edge — so the
adversarial workload drives **maximal-depth trie descents**: packets whose
pseudo-payload follows the longest signature chain.  Random traffic falls
off the trie after a byte or two.
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.ir.module import Module
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.nf.common import (
    DPI_DEPTH,
    DPI_FANOUT,
    DPI_MAX_NODES,
    middlebox_packet_defaults,
    make_flow_packet,
)

DPI_SOURCE = f"""
DPI_FANOUT = {DPI_FANOUT}
DPI_DEPTH = {DPI_DEPTH}


def pp_byte(src_ip, src_port, dst_port, depth):
    if depth < 4:
        return (src_ip >> (24 - depth * 8)) & 0xFF
    if depth < 6:
        return (src_port >> (40 - depth * 8)) & 0xFF
    return (dst_port >> (56 - depth * 8)) & 0xFF


def process(src_ip, dst_ip, src_port, dst_port, protocol):
    if protocol != 17 and protocol != 6:
        return 0
    node = 0
    verdict = 0
    depth = 0
    advanced = 1
    while advanced == 1 and depth < DPI_DEPTH:
        byte = pp_byte(src_ip, src_port, dst_port, depth)
        kids = dpi_nkids[node]
        advanced = 0
        k = 0
        while k < kids:
            if dpi_child_byte[node * DPI_FANOUT + k] == byte:
                node = dpi_child_node[node * DPI_FANOUT + k]
                advanced = 1
                break
            k = k + 1
        if advanced == 1:
            rule = dpi_rule[node]
            if rule != 0:
                verdict = rule
            depth = depth + 1
    if verdict != 0:
        return 0
    return 1
"""

#: Default signature set: chains share prefixes so descent depth varies from
#: 2 to the full pseudo-payload, and the deepest chain (rule 4) is the
#: adversarial target.  Bytes follow the pseudo-payload layout: 4 source-IP
#: bytes, 2 source-port bytes, 2 destination-port bytes.
DEFAULT_SIGNATURES: tuple[tuple[bytes, int], ...] = (
    (b"\x0a\x00\x00", 1),  # any source in 10.0.0.0/24
    (b"\x0a\x00\x00\x01", 2),  # source host 10.0.0.1
    (b"\x0a\x00\x00\x01\x27\x0f", 3),  # ... from source port 9999
    (b"\x0a\x00\x00\x01\x27\x0f\x00\x35", 4),  # ... to destination port 53
    (b"\xc0\xa8\x01", 5),  # any source in 192.168.1.0/24
    (b"\xde\xad\xbe\xef", 6),  # source host 222.173.190.239
)


def build_dpi_trie(
    signatures: tuple[tuple[bytes, int], ...],
) -> tuple[dict[int, int], dict[int, int], dict[int, int], dict[int, int]]:
    """Build the trie node-pool arrays from ``(pattern_bytes, rule_id)`` pairs.

    Node 0 is the root.  Returns the ``initial`` dictionaries for the
    ``dpi_nkids``, ``dpi_child_byte``, ``dpi_child_node`` and ``dpi_rule``
    regions; raises on fanout/depth/pool overflow so a bad signature set
    fails at build time, not during analysis.
    """
    nkids: dict[int, int] = {}
    child_byte: dict[int, int] = {}
    child_node: dict[int, int] = {}
    rule_of: dict[int, int] = {}
    next_node = 1
    for pattern, rule in signatures:
        if not pattern or len(pattern) > DPI_DEPTH:
            raise ValueError(
                f"signature {pattern!r} must be 1..{DPI_DEPTH} bytes long"
            )
        if rule == 0:
            raise ValueError("rule id 0 is reserved for 'no match'")
        node = 0
        for byte in pattern:
            kids = nkids.get(node, 0)
            child = 0
            for k in range(kids):
                if child_byte.get(node * DPI_FANOUT + k, 0) == byte:
                    child = child_node[node * DPI_FANOUT + k]
                    break
            if child == 0:
                if kids >= DPI_FANOUT:
                    raise ValueError(
                        f"node fanout exceeds DPI_FANOUT={DPI_FANOUT}; "
                        "reduce signature branching"
                    )
                if next_node >= DPI_MAX_NODES:
                    raise ValueError("trie node pool exhausted; raise DPI_MAX_NODES")
                child = next_node
                next_node += 1
                child_byte[node * DPI_FANOUT + kids] = byte
                child_node[node * DPI_FANOUT + kids] = child
                nkids[node] = kids + 1
            node = child
        if node in rule_of:
            raise ValueError(
                f"duplicate signature {pattern!r}: a rule already ends at this node"
            )
        rule_of[node] = rule
    return nkids, child_byte, child_node, rule_of


def packet_for_signature(pattern: bytes, pad_dst_ip: int = 0x08080808) -> Packet:
    """A packet whose pseudo-payload starts with ``pattern`` (zero-padded)."""
    padded = pattern.ljust(DPI_DEPTH, b"\x00")
    src_ip = int.from_bytes(padded[0:4], "big")
    src_port = int.from_bytes(padded[4:6], "big")
    dst_port = int.from_bytes(padded[6:8], "big")
    return make_flow_packet(src_ip, pad_dst_ip, src_port, dst_port)


def manual_dpi_workload(count: int) -> list[Packet]:
    """Packets following the deepest signature chains (maximal descents)."""
    deepest = sorted(DEFAULT_SIGNATURES, key=lambda sig: -len(sig[0]))
    packets: list[Packet] = []
    index = 0
    while len(packets) < count:
        pattern, _rule = deepest[index % len(deepest)]
        packets.append(packet_for_signature(pattern, pad_dst_ip=0x08080808 + index))
        index += 1
    return packets


def build_dpi(
    signatures: tuple[tuple[bytes, int], ...] = DEFAULT_SIGNATURES,
) -> NetworkFunction:
    """Build the pattern-trie DPI NF with the given signature set."""
    nkids, child_byte, child_node, rule_of = build_dpi_trie(signatures)
    module = Module("dpi-trie")
    module.add_region("dpi_nkids", DPI_MAX_NODES, 8, initial=nkids)
    module.add_region("dpi_child_byte", DPI_MAX_NODES * DPI_FANOUT, 8, initial=child_byte)
    module.add_region("dpi_child_node", DPI_MAX_NODES * DPI_FANOUT, 8, initial=child_node)
    module.add_region("dpi_rule", DPI_MAX_NODES, 8, initial=rule_of)
    compile_nf(module, DPI_SOURCE, entry="process")
    return NetworkFunction(
        name="dpi-trie",
        module=module,
        description="DPI-style signature matching over a byte-granular pattern trie.",
        nf_class="dpi",
        data_structure="pattern-trie",
        packet_defaults=middlebox_packet_defaults(),
        castan_packet_count=8,
        manual_workload=manual_dpi_workload,
        contention_regions=[],
        notes=(
            "Matching cost follows trie descent depth; adversarial packets "
            "track the longest signature chains."
        ),
    )
