"""Per-flow token-bucket policer keyed by a two-choice (cuckoo-style) hash.

Each flow owns a token bucket (capacity ``POLICER_BURST``, one token earned
every ``POLICER_REFILL_TICKS`` clock ticks; the clock advances once per
packet).  Buckets live in **two** hash tables: a flow is stored either at
``flow_hash16(key) & MASK`` in table A or at ``flow_hash16(alt_key) & MASK``
in table B, where ``alt_key`` swaps the two port fields of the packed key
(keeping it flow-shaped, so the rainbow tables of §3.5 can invert both
probes).  Insertion is cuckoo-style: if both candidate slots are occupied,
the table-A occupant is kicked to *its* alternate slot, possibly displacing
another entry, for at most ``POLICER_MAX_KICKS`` relocations (the last
displaced entry is dropped — a bounded, stash-less cuckoo).

The adversarial pattern is hash-driven: flows whose probes collide in
*both* tables force every insertion through the relocation cascade, each
kick re-hashing a stored key and rewriting three words in the other table.
Random traffic spreads over ``2 * POLICER_SLOTS`` slots and almost never
cascades.  Both hashes are ``castan_havoc``-annotated, so the analysis
suppresses them during the search and reconciles concrete colliding keys
afterwards.

Key 0 marks an empty slot (the hash ring's convention); the all-zero
5-tuple packs to key 0 and would alias it, so that one degenerate flow is
forwarded without being tracked.
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.hashing.functions import FLOW_HASH_BITS, FLOW_HASH_DIALECT_SOURCE, flow_hash16
from repro.ir.module import Module
from repro.nf.base import NetworkFunction
from repro.nf.common import (
    POLICER_BURST,
    POLICER_KEY_ENTRY_BYTES,
    POLICER_MAX_KICKS,
    POLICER_REFILL_TICKS,
    POLICER_SLOTS,
    middlebox_packet_defaults,
)

POLICER_SOURCE = f"""
POL_MASK = {POLICER_SLOTS - 1}
POL_BURST = {POLICER_BURST}
POL_REFILL_TICKS = {POLICER_REFILL_TICKS}
POL_MAX_KICKS = {POLICER_MAX_KICKS}


def pol_alt_key(key):
    ip = key & 0xFFFFFFFF
    p1 = (key >> 32) & 0xFFFF
    p2 = (key >> 48) & 0xFFFF
    return ip | (p2 << 32) | (p1 << 48)


def pol_refill(tokens, last, now):
    return min(tokens + (now - last) // POL_REFILL_TICKS, POL_BURST)


def pol_advance(last, now):
    return last + ((now - last) // POL_REFILL_TICKS) * POL_REFILL_TICKS


def process(src_ip, dst_ip, src_port, dst_port, protocol):
    if protocol != 17 and protocol != 6:
        return 0
    now = pol_clock[0] + 1
    pol_clock[0] = now
    key = src_ip | (src_port << 32) | (dst_port << 48)
    if key == 0:
        return 1
    alt = src_ip | (dst_port << 32) | (src_port << 48)
    ha = castan_havoc(key, flow_hash16(key))
    slot_a = ha & POL_MASK
    if pol_key_a[slot_a] == key:
        last = pol_last_a[slot_a]
        tokens = pol_refill(pol_tokens_a[slot_a], last, now)
        pol_last_a[slot_a] = pol_advance(last, now)
        if tokens == 0:
            pol_tokens_a[slot_a] = 0
            return 0
        pol_tokens_a[slot_a] = tokens - 1
        return 1
    hb = castan_havoc(alt, flow_hash16(alt))
    slot_b = hb & POL_MASK
    if pol_key_b[slot_b] == key:
        last = pol_last_b[slot_b]
        tokens = pol_refill(pol_tokens_b[slot_b], last, now)
        pol_last_b[slot_b] = pol_advance(last, now)
        if tokens == 0:
            pol_tokens_b[slot_b] = 0
            return 0
        pol_tokens_b[slot_b] = tokens - 1
        return 1
    if pol_key_a[slot_a] == 0:
        pol_key_a[slot_a] = key
        pol_tokens_a[slot_a] = POL_BURST - 1
        pol_last_a[slot_a] = now
        return 1
    if pol_key_b[slot_b] == 0:
        pol_key_b[slot_b] = key
        pol_tokens_b[slot_b] = POL_BURST - 1
        pol_last_b[slot_b] = now
        return 1
    cur_key = pol_key_a[slot_a]
    cur_tok = pol_tokens_a[slot_a]
    cur_last = pol_last_a[slot_a]
    pol_key_a[slot_a] = key
    pol_tokens_a[slot_a] = POL_BURST - 1
    pol_last_a[slot_a] = now
    to_b = 1
    kicks = 0
    while kicks < POL_MAX_KICKS:
        if to_b == 1:
            akey = pol_alt_key(cur_key)
            hv = castan_havoc(akey, flow_hash16(akey))
            slot = hv & POL_MASK
            vkey = pol_key_b[slot]
            vtok = pol_tokens_b[slot]
            vlast = pol_last_b[slot]
            pol_key_b[slot] = cur_key
            pol_tokens_b[slot] = cur_tok
            pol_last_b[slot] = cur_last
        else:
            hv = castan_havoc(cur_key, flow_hash16(cur_key))
            slot = hv & POL_MASK
            vkey = pol_key_a[slot]
            vtok = pol_tokens_a[slot]
            vlast = pol_last_a[slot]
            pol_key_a[slot] = cur_key
            pol_tokens_a[slot] = cur_tok
            pol_last_a[slot] = cur_last
        if vkey == 0:
            return 1
        cur_key = vkey
        cur_tok = vtok
        cur_last = vlast
        to_b = 1 - to_b
        kicks = kicks + 1
    return 1
"""


def build_policer() -> NetworkFunction:
    """Build the two-choice token-bucket policer NF."""
    module = Module("policer-two-choice")
    module.add_region("pol_key_a", POLICER_SLOTS, POLICER_KEY_ENTRY_BYTES)
    module.add_region("pol_tokens_a", POLICER_SLOTS, 8)
    module.add_region("pol_last_a", POLICER_SLOTS, 8)
    module.add_region("pol_key_b", POLICER_SLOTS, POLICER_KEY_ENTRY_BYTES)
    module.add_region("pol_tokens_b", POLICER_SLOTS, 8)
    module.add_region("pol_last_b", POLICER_SLOTS, 8)
    module.add_region("pol_clock", 1, 8)
    compile_nf(module, FLOW_HASH_DIALECT_SOURCE + POLICER_SOURCE, entry="process")
    return NetworkFunction(
        name="policer-two-choice",
        module=module,
        description="Per-flow token-bucket policer in a cuckoo-style two-choice hash.",
        nf_class="policer",
        data_structure="two-choice-hash",
        hash_functions={"flow_hash16": flow_hash16},
        hash_output_bits={"flow_hash16": FLOW_HASH_BITS},
        packet_defaults=middlebox_packet_defaults(),
        castan_packet_count=30,
        contention_regions=["pol_key_a", "pol_key_b"],
        notes=(
            "Colliding both candidate slots forces cuckoo relocation cascades "
            "of up to POLICER_MAX_KICKS displacements per insertion."
        ),
    )
