"""The evaluation network functions (§5.1 plus scenario expansions).

Sixteen NFs, each written in the restricted-Python NF dialect and compiled
to NFIL: a NOP baseline, three LPM implementations (Patricia trie, 1-stage
direct lookup, DPDK-style 2-stage lookup), NAT/LB pairs over four
associative containers (chained hash table, open-addressing hash ring,
unbalanced binary tree, red-black tree), and four scenario-expansion NFs
(ring-buffer conntrack firewall, two-choice token-bucket policer,
Bloom-filter dedup, pattern-trie DPI).  Use
:func:`repro.nf.registry.get_nf` to obtain a configured
:class:`repro.nf.base.NetworkFunction`.
"""

from repro._lazy import lazy_exports

__all__ = [
    "NetworkFunction",
    "available_nfs",
    "get_nf",
    "NF_NAMES",
]

_EXPORTS = {
    "NetworkFunction": (".base", "NetworkFunction"),
    "available_nfs": (".registry", "available_nfs"),
    "get_nf": (".registry", "get_nf"),
    "NF_NAMES": (".registry", "NF_NAMES"),
}

__getattr__, __dir__ = lazy_exports(__name__, _EXPORTS)
