"""Packet dedup over a Bloom filter with an exact slow-path store.

The NF drops duplicate packets.  Each packet is reduced to a fingerprint
(the simulated packet model carries no payload, so the packed flow key
stands in for a payload digest) and probed against a Bloom filter with two
``castan_havoc``-annotated hash probes — the second over the port-swapped
key packing, which stays flow-shaped and therefore rainbow-invertible.  If
either probed bit is clear the packet is certainly new: the fast path sets
both bits, appends the fingerprint to an exact store and forwards.  If both
bits are set the packet is only *possibly* a duplicate, and the NF takes
the **slow path**: a linear verification scan of the exact store that
either finds the fingerprint (true duplicate → drop) or proves a false
positive (append and forward).

Two adversarial gradients:

* **bit saturation** — distinct flows whose probes land on already-set bits
  turn every first-sighting packet into a false positive, paying a
  full-store scan before the append (the havoc-reconciled collision
  channel);
* **honest duplicates** — repeating a flow that was inserted *deep* in the
  store forces the verification scan to walk all the entries in front of it
  on every repetition; no hash collision is needed, so this channel
  survives even when reconciliation fails (§5.4's partial results).
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.hashing.functions import FLOW_HASH_BITS, FLOW_HASH_DIALECT_SOURCE, flow_hash16
from repro.ir.module import Module
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.nf.common import (
    BLOOM_BITS,
    DEDUP_MAX_FINGERPRINTS,
    EXTERNAL_SERVER,
    middlebox_packet_defaults,
    make_flow_packet,
)

DEDUP_SOURCE = f"""
BLOOM_MASK = {BLOOM_BITS - 1}
DEDUP_MAX = {DEDUP_MAX_FINGERPRINTS}


def process(src_ip, dst_ip, src_port, dst_port, protocol):
    if protocol != 17 and protocol != 6:
        return 0
    fp = src_ip | (src_port << 32) | (dst_port << 48)
    alt = src_ip | (dst_port << 32) | (src_port << 48)
    h1 = castan_havoc(fp, flow_hash16(fp))
    b1 = h1 & BLOOM_MASK
    h2 = castan_havoc(alt, flow_hash16(alt))
    b2 = h2 & BLOOM_MASK
    if bloom_bit[b1] == 1 and bloom_bit[b2] == 1:
        count = dedup_count[0]
        i = 0
        while i < count:
            if dedup_fp[i] == fp:
                return 0
            i = i + 1
    bloom_bit[b1] = 1
    bloom_bit[b2] = 1
    count = dedup_count[0]
    if count < DEDUP_MAX:
        dedup_fp[count] = fp
        dedup_count[0] = count + 1
    return 1
"""


def manual_dedup_workload(count: int) -> list[Packet]:
    """Fill the store with distinct flows, then replay the deepest one: each
    duplicate pays a verification scan over everything in front of it."""
    fill = max(1, count // 2)
    packets = [
        make_flow_packet(0x0B000001, EXTERNAL_SERVER, 1024 + i, 80) for i in range(fill)
    ]
    while len(packets) < count:
        packets.append(make_flow_packet(0x0B000001, EXTERNAL_SERVER, 1024 + fill - 1, 80))
    return packets


def build_dedup() -> NetworkFunction:
    """Build the Bloom-filter dedup NF."""
    module = Module("dedup-bloom")
    module.add_region("bloom_bit", BLOOM_BITS, 8)
    module.add_region("dedup_fp", DEDUP_MAX_FINGERPRINTS, 8)
    module.add_region("dedup_count", 1, 8)
    compile_nf(module, FLOW_HASH_DIALECT_SOURCE + DEDUP_SOURCE, entry="process")
    return NetworkFunction(
        name="dedup-bloom",
        module=module,
        description="Duplicate suppression via a Bloom filter with exact slow-path verification.",
        nf_class="dedup",
        data_structure="bloom-filter",
        hash_functions={"flow_hash16": flow_hash16},
        hash_output_bits={"flow_hash16": FLOW_HASH_BITS},
        packet_defaults=middlebox_packet_defaults(),
        castan_packet_count=20,
        manual_workload=manual_dedup_workload,
        contention_regions=["bloom_bit"],
        notes=(
            "Saturated filter bits force every packet through the slow-path "
            "verification scan of the exact fingerprint store."
        ),
    )
