"""Registry of the evaluation NFs.

``get_nf(name)`` builds a fresh :class:`~repro.nf.base.NetworkFunction`
(each call compiles a new module, so callers can mutate state freely).
The names cover the paper's Table 4 rows (LPM / LB / NAT variants), the
four scenario-expansion NFs (firewall, policer, dedup, DPI), the two
preset service chains and the NOP baseline — 17 evaluation NFs in total.
``chain:`` specs compose registered NFs ad hoc (:mod:`repro.nf.chain`).

>>> from repro.nf.registry import EVALUATION_NF_NAMES, NF_NAMES, get_nf
>>> len(NF_NAMES)
18
>>> len(EVALUATION_NF_NAMES)  # without the NOP baseline
17
>>> get_nf("lpm-patricia").nf_class
'lpm'
>>> get_nf("fw-conntrack").data_structure
'ring-buffer'
>>> [stage.label for stage in get_nf("chain-gateway").chain_stages]
['lpm-dpdk', 'fw-conntrack', 'nat-hash-table']
>>> get_nf("chain:router,fw").is_chain
True

Unknown names raise a ``KeyError`` that suggests close matches:

>>> get_nf("lpm-patrica")
Traceback (most recent call last):
    ...
KeyError: "unknown NF 'lpm-patrica'; did you mean 'lpm-patricia'?"

and chain parse errors name the offending stage:

>>> get_nf("chain:router,fw-contrack")
Traceback (most recent call last):
    ...
KeyError: "chain stage 2 ('fw-contrack') in 'chain:router,fw-contrack' is not a registered NF; did you mean 'fw-conntrack'?"
"""

from __future__ import annotations

import difflib
from typing import Callable

from repro.nf.base import NetworkFunction
from repro.nf.chain import PRESET_CHAINS, build_chain, is_chain_spec
from repro.nf.dedup import build_dedup
from repro.nf.dpi import build_dpi
from repro.nf.firewall import build_firewall
from repro.nf.lb import build_lb
from repro.nf.lpm_direct import build_lpm_direct
from repro.nf.lpm_dpdk import build_lpm_dpdk
from repro.nf.lpm_patricia import build_lpm_patricia
from repro.nf.nat import build_nat
from repro.nf.nop import build_nop
from repro.nf.policer import build_policer

_BUILDERS: dict[str, Callable[[], NetworkFunction]] = {
    "nop": build_nop,
    "lpm-patricia": build_lpm_patricia,
    "lpm-direct": build_lpm_direct,
    "lpm-dpdk": build_lpm_dpdk,
    "lb-hash-table": lambda: build_lb("hash-table"),
    "lb-hash-ring": lambda: build_lb("hash-ring"),
    "lb-unbalanced-tree": lambda: build_lb("unbalanced-tree"),
    "lb-red-black-tree": lambda: build_lb("red-black-tree"),
    "nat-hash-table": lambda: build_nat("hash-table"),
    "nat-hash-ring": lambda: build_nat("hash-ring"),
    "nat-unbalanced-tree": lambda: build_nat("unbalanced-tree"),
    "nat-red-black-tree": lambda: build_nat("red-black-tree"),
    "fw-conntrack": build_firewall,
    "policer-two-choice": build_policer,
    "dedup-bloom": build_dedup,
    "dpi-trie": build_dpi,
    "chain-gateway": lambda: build_chain(
        PRESET_CHAINS["chain-gateway"], name="chain-gateway"
    ),
    "chain-edge": lambda: build_chain(PRESET_CHAINS["chain-edge"], name="chain-edge"),
}

#: Every evaluation NF (17) plus the NOP baseline.
NF_NAMES: tuple[str, ...] = tuple(_BUILDERS)

#: The 17 evaluation NFs (without the NOP baseline): the paper's 11
#: Table 1-5 NFs, the firewall / policer / dedup / DPI scenarios, and the
#: two preset service chains.
EVALUATION_NF_NAMES: tuple[str, ...] = tuple(n for n in NF_NAMES if n != "nop")


def available_nfs() -> list[str]:
    """Names accepted by :func:`get_nf` (``chain:`` specs also work)."""
    return list(NF_NAMES)


def get_nf(name: str) -> NetworkFunction:
    """Build a fresh instance of the named NF (or ``chain:`` spec)."""
    if is_chain_spec(name):
        return build_chain(name)
    try:
        builder = _BUILDERS[name]
    except KeyError:
        suggestions = difflib.get_close_matches(name, NF_NAMES, n=3, cutoff=0.6)
        if suggestions:
            hint = " or ".join(repr(s) for s in suggestions)
            message = f"unknown NF {name!r}; did you mean {hint}?"
        else:
            message = f"unknown NF {name!r}; available: {', '.join(NF_NAMES)}"
        raise KeyError(message) from None
    return builder()
