"""Registry of the evaluation NFs.

``get_nf(name)`` builds a fresh :class:`~repro.nf.base.NetworkFunction`
(each call compiles a new module, so callers can mutate state freely).
The names mirror the paper's Table 4 rows plus the NOP baseline.
"""

from __future__ import annotations

from typing import Callable

from repro.nf.base import NetworkFunction
from repro.nf.lb import build_lb
from repro.nf.lpm_direct import build_lpm_direct
from repro.nf.lpm_dpdk import build_lpm_dpdk
from repro.nf.lpm_patricia import build_lpm_patricia
from repro.nf.nat import build_nat
from repro.nf.nop import build_nop

_BUILDERS: dict[str, Callable[[], NetworkFunction]] = {
    "nop": build_nop,
    "lpm-patricia": build_lpm_patricia,
    "lpm-direct": build_lpm_direct,
    "lpm-dpdk": build_lpm_dpdk,
    "lb-hash-table": lambda: build_lb("hash-table"),
    "lb-hash-ring": lambda: build_lb("hash-ring"),
    "lb-unbalanced-tree": lambda: build_lb("unbalanced-tree"),
    "lb-red-black-tree": lambda: build_lb("red-black-tree"),
    "nat-hash-table": lambda: build_nat("hash-table"),
    "nat-hash-ring": lambda: build_nat("hash-ring"),
    "nat-unbalanced-tree": lambda: build_nat("unbalanced-tree"),
    "nat-red-black-tree": lambda: build_nat("red-black-tree"),
}

#: Every NF of the paper's evaluation (11 NFs) plus the NOP baseline.
NF_NAMES: tuple[str, ...] = tuple(_BUILDERS)

#: The 11 NFs of Tables 1-5 (without the NOP baseline).
EVALUATION_NF_NAMES: tuple[str, ...] = tuple(n for n in NF_NAMES if n != "nop")


def available_nfs() -> list[str]:
    """Names accepted by :func:`get_nf`."""
    return list(NF_NAMES)


def get_nf(name: str) -> NetworkFunction:
    """Build a fresh instance of the named NF."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown NF {name!r}; available: {', '.join(NF_NAMES)}"
        ) from None
    return builder()
