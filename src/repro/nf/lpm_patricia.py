"""LPM over a Patricia/binary trie (§5.1, data structure 1).

The forwarding table is encoded in a statically allocated binary trie over
destination-address bits; lookup walks from the root, remembering the last
node that carried a route.  Lookup cost grows with the length of the
matched prefix, so packets matching the most specific (host) routes — or
addresses that differ from them only in their final bits — maximise the
number of executed instructions.  That is exactly the Manual adversarial
workload, and the workload CASTAN rediscovers automatically (§5.3).
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.ir.module import Module
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.nf.common import (
    TRIE_MAX_NODES,
    Route,
    build_routes,
    lpm_packet_defaults,
    make_flow_packet,
)

PATRICIA_SOURCE = """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    node = 0
    best = 0
    depth = 0
    keep_going = 1
    while keep_going == 1 and depth < 32:
        route = trie_route[node]
        if route != 0:
            best = route
        bit = (dst_ip >> (31 - depth)) & 1
        if bit == 1:
            next_node = trie_right[node]
        else:
            next_node = trie_left[node]
        if next_node == 0:
            keep_going = 0
        else:
            node = next_node
            depth = depth + 1
    route = trie_route[node]
    if route != 0:
        best = route
    return best
"""


def build_trie_arrays(routes: list[Route]) -> tuple[dict[int, int], dict[int, int], dict[int, int]]:
    """Build the left/right/route node-pool arrays from a route list.

    Node 0 is the root; children are allocated sequentially.  Returns the
    ``initial`` dictionaries for the three regions.
    """
    left: dict[int, int] = {}
    right: dict[int, int] = {}
    route_of: dict[int, int] = {}
    next_node = 1
    for route in routes:
        node = 0
        for depth in range(route.length):
            bit = (route.prefix >> (31 - depth)) & 1
            children = right if bit else left
            child = children.get(node, 0)
            if child == 0:
                if next_node >= TRIE_MAX_NODES:
                    raise ValueError("trie node pool exhausted; raise TRIE_MAX_NODES")
                child = next_node
                next_node += 1
                children[node] = child
            node = child
        route_of[node] = route.port
    return left, right, route_of


def manual_patricia_workload(count: int) -> list[Packet]:
    """Packets matching the most specific routes (the paper's 8-packet Manual)."""
    routes = sorted(build_routes(), key=lambda r: -r.length)
    packets: list[Packet] = []
    for route in routes:
        packets.append(make_flow_packet(0xC0A80064, route.prefix, 10000, 80))
        if len(packets) >= count:
            break
    index = 0
    while len(packets) < count:
        # Pad with addresses that are off by one final bit, which take the
        # same number of trie steps (the trick CASTAN also discovers).
        route = routes[index % len(routes)]
        packets.append(make_flow_packet(0xC0A80064, route.prefix ^ 1, 10000, 80))
        index += 1
    return packets


def build_lpm_patricia() -> NetworkFunction:
    """Build the Patricia-trie LPM NF with the standard routing table."""
    routes = build_routes()
    left, right, route_of = build_trie_arrays(routes)
    module = Module("lpm-patricia")
    module.add_region("trie_left", TRIE_MAX_NODES, 8, initial=left)
    module.add_region("trie_right", TRIE_MAX_NODES, 8, initial=right)
    module.add_region("trie_route", TRIE_MAX_NODES, 8, initial=route_of)
    compile_nf(module, PATRICIA_SOURCE, entry="process")
    return NetworkFunction(
        name="lpm-patricia",
        module=module,
        description="Destination LPM over a statically allocated binary (Patricia) trie.",
        nf_class="lpm",
        data_structure="patricia-trie",
        packet_defaults=lpm_packet_defaults(),
        castan_packet_count=8,
        manual_workload=manual_patricia_workload,
        contention_regions=[],
        notes="Algorithmic-complexity attack surface: lookup depth follows prefix length.",
    )
