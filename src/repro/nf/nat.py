"""Source NAT NFs (§5.1), one per associative container.

The NAT keeps per-flow state so that outgoing packets (from the internal
10.0.0.0/8 network) are rewritten to an allocated external port and
returning traffic can be translated back.  Each new flow therefore inserts
*two* entries keyed on different-but-related parts of the packet — the
property that makes reconciling the NAT's hash havocs hard (§5.4).  Four
variants store the state in a chained hash table, a hash ring, an
unbalanced binary tree and a red-black tree.
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.hashing.functions import FLOW_HASH_BITS, FLOW_HASH_DIALECT_SOURCE, flow_hash16
from repro.ir.module import Module
from repro.net.packet import Packet
from repro.nf.assoc import CONTAINERS
from repro.nf.base import NetworkFunction
from repro.nf.common import (
    EXTERNAL_SERVER,
    HASH_TABLE_BUCKETS,
    INTERNAL_PREFIX_OCTET,
    NAT_FIRST_EXTERNAL_PORT,
    nat_packet_defaults,
    nat_workload_hints,
    make_flow_packet,
)

_NAT_HEADER = f"""
INTERNAL_OCTET = {INTERNAL_PREFIX_OCTET}
"""

_NAT_PREAMBLE = """
    if protocol != 17 and protocol != 6:
        return 0
    if (src_ip >> 24) != INTERNAL_OCTET:
        return 0
    fkey = src_ip | (src_port << 32) | (dst_port << 48)
"""

_NAT_ALLOC = """
    ext_port = nat_port[0]
    nat_port[0] = ext_port + 1
    rkey = dst_ip | (dst_port << 32) | ((ext_port & 0xFFFF) << 48)
"""

_NAT_PROCESS = {
    "hash-table": f"""
def process(src_ip, dst_ip, src_port, dst_port, protocol):
{_NAT_PREAMBLE}
    fhv = castan_havoc(fkey, flow_hash16(fkey))
    fbucket = fhv & {HASH_TABLE_BUCKETS - 1}
    node = ht_lookup(fkey, fbucket)
    if node != 0:
        return ht_value[node - 1]
{_NAT_ALLOC}
    inserted = ht_insert(fkey, ext_port, fbucket)
    if inserted == 0:
        return 0
    rhv = castan_havoc(rkey, flow_hash16(rkey))
    rbucket = rhv & {HASH_TABLE_BUCKETS - 1}
    inserted = ht_insert(rkey, src_port, rbucket)
    return ext_port & 0xFFFF
""",
    "hash-ring": f"""
def process(src_ip, dst_ip, src_port, dst_port, protocol):
{_NAT_PREAMBLE}
    fhv = castan_havoc(fkey, flow_hash16(fkey))
    found = ring_find_slot(fkey, fhv)
    if found == 0:
        return 0
    fslot = found - 1
    if ring_key[fslot] == fkey:
        return ring_value[fslot]
{_NAT_ALLOC}
    ring_key[fslot] = fkey
    ring_value[fslot] = ext_port
    ring_count[0] = ring_count[0] + 1
    rhv = castan_havoc(rkey, flow_hash16(rkey))
    found = ring_find_slot(rkey, rhv)
    if found != 0:
        rslot = found - 1
        ring_key[rslot] = rkey
        ring_value[rslot] = src_port
        ring_count[0] = ring_count[0] + 1
    return ext_port & 0xFFFF
""",
    "unbalanced-tree": f"""
def process(src_ip, dst_ip, src_port, dst_port, protocol):
{_NAT_PREAMBLE}
    node = bst_find(fkey)
    if node != 0:
        return bst_value[node]
{_NAT_ALLOC}
    inserted = bst_insert(fkey, ext_port)
    if inserted == 0:
        return 0
    inserted = bst_insert(rkey, src_port)
    return ext_port & 0xFFFF
""",
    "red-black-tree": f"""
def process(src_ip, dst_ip, src_port, dst_port, protocol):
{_NAT_PREAMBLE}
    node = rb_find(fkey)
    if node != 0:
        return rb_value[node]
{_NAT_ALLOC}
    inserted = rb_insert(fkey, ext_port)
    if inserted == 0:
        return 0
    inserted = rb_insert(rkey, src_port)
    return ext_port & 0xFFFF
""",
}

_CASTAN_PACKET_COUNTS = {
    "hash-table": 30,
    "hash-ring": 40,
    "unbalanced-tree": 50,
    "red-black-tree": 35,
}


def manual_nat_unbalanced_workload(count: int) -> list[Packet]:
    """Same endpoints, increasing destination ports: keys arrive in order,
    so the unbalanced tree degenerates into a linked list (§5.3)."""
    packets = []
    src_ip = (INTERNAL_PREFIX_OCTET << 24) | 0x000101
    for i in range(count):
        packets.append(make_flow_packet(src_ip, EXTERNAL_SERVER, 10000, 1024 + i))
    return packets


def build_nat(data_structure: str) -> NetworkFunction:
    """Build one NAT variant; ``data_structure`` is a key of ``CONTAINERS``."""
    try:
        container = CONTAINERS[data_structure]
    except KeyError:
        raise ValueError(
            f"unknown NAT data structure {data_structure!r}; options: {sorted(CONTAINERS)}"
        ) from None

    module = Module(f"nat-{data_structure}")
    container["declare"](module)
    module.add_region("nat_port", 1, 8, initial={0: NAT_FIRST_EXTERNAL_PORT})

    source_parts = [_NAT_HEADER, container["source"], _NAT_PROCESS[data_structure]]
    if container["uses_hash"]:
        source_parts.insert(1, FLOW_HASH_DIALECT_SOURCE)
    compile_nf(module, "\n".join(source_parts), entry="process")

    manual = manual_nat_unbalanced_workload if data_structure == "unbalanced-tree" else None
    return NetworkFunction(
        name=f"nat-{data_structure}",
        module=module,
        description=f"Source NAT keeping two per-flow entries in a {data_structure}.",
        nf_class="nat",
        data_structure=data_structure,
        hash_functions={"flow_hash16": flow_hash16} if container["uses_hash"] else {},
        hash_output_bits={"flow_hash16": FLOW_HASH_BITS} if container["uses_hash"] else {},
        packet_defaults=nat_packet_defaults(),
        workload_hints=nat_workload_hints(),
        castan_packet_count=_CASTAN_PACKET_COUNTS[data_structure],
        manual_workload=manual,
        contention_regions=list(container["contention_regions"]),
        chain_result_rewrite="src_port",
        notes="Each new flow stores two entries keyed on related packet fields.",
    )
