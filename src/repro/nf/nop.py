"""The NOP network function (§5.1).

Forwards every packet without touching any data structure.  The testbed
uses it as the latency/throughput baseline that isolates the DPDK/driver
and wire overhead from the NF processing cost; every latency table in the
paper reports deviations from this NF.
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.ir.module import Module
from repro.nf.base import NetworkFunction
from repro.nf.common import lpm_packet_defaults

NOP_SOURCE = """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    return 1
"""


def build_nop() -> NetworkFunction:
    """Build the NOP baseline NF."""
    module = Module("nop")
    compile_nf(module, NOP_SOURCE, entry="process")
    return NetworkFunction(
        name="nop",
        module=module,
        description="Forwards every packet unmodified (testbed baseline).",
        nf_class="nop",
        data_structure="none",
        packet_defaults=lpm_packet_defaults(),
        castan_packet_count=1,
        notes="Used as the baseline subtracted from every latency measurement.",
    )
