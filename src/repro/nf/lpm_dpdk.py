"""LPM with DPDK-style two-stage Direct Lookup (§5.1, data structure 3).

A hierarchical version of direct lookup: the first-stage table is indexed
by the top ``DPDK_STAGE1_BITS`` bits of the destination; entries either
hold the next hop directly or point into a second-stage ``tbl8`` group that
resolves the next 8 bits.  The first-stage table still exceeds the
simulated L3, but only by a small factor — which is why the paper finds it
more robust against small cache-contention workloads than the one-stage
variant (§5.2, Fig. 6).
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.ir.module import Module
from repro.nf.base import NetworkFunction
from repro.nf.common import (
    DPDK_STAGE1_BITS,
    DPDK_STAGE1_ENTRY_BYTES,
    DPDK_TBL8_FLAG,
    DPDK_TBL8_GROUPS,
    Route,
    build_routes,
    lpm_packet_defaults,
)

DPDK_LPM_SOURCE = f"""
STAGE1_SHIFT = {32 - DPDK_STAGE1_BITS}
TBL8_FLAG = {DPDK_TBL8_FLAG}


def process(src_ip, dst_ip, src_port, dst_port, protocol):
    index = dst_ip >> STAGE1_SHIFT
    entry = tbl16[index]
    if entry >= TBL8_FLAG:
        group = entry - TBL8_FLAG
        second = (group << 8) | ((dst_ip >> {32 - DPDK_STAGE1_BITS - 8}) & 0xFF)
        return tbl8[second]
    return entry
"""


def build_dpdk_tables(routes: list[Route]) -> tuple[dict[int, int], dict[int, int]]:
    """Build the tbl16/tbl8 initial contents from the route list.

    Routes no longer than ``DPDK_STAGE1_BITS`` fill first-stage entries
    directly; longer routes allocate a tbl8 group for their /16 and fill
    the covered second-stage entries (host routes are truncated to the
    stage-2 granularity, i.e. /24 in the scaled configuration).
    """
    stage1_bits = DPDK_STAGE1_BITS
    tbl16: dict[int, int] = {}
    tbl8: dict[int, int] = {}
    group_of_prefix: dict[int, int] = {}
    next_group = 0

    for route in sorted(routes, key=lambda r: r.length):
        if route.length <= stage1_bits:
            base = (route.prefix >> (32 - stage1_bits)) & ((1 << stage1_bits) - 1)
            span = 1 << (stage1_bits - route.length)
            base &= ~(span - 1)
            for offset in range(span):
                index = base + offset
                # Do not clobber entries that already point at a tbl8 group.
                if tbl16.get(index, 0) < DPDK_TBL8_FLAG:
                    tbl16[index] = route.port
            continue
        # Longer prefix: allocate (or reuse) a tbl8 group under its /16.
        stage1_index = (route.prefix >> (32 - stage1_bits)) & ((1 << stage1_bits) - 1)
        if stage1_index not in group_of_prefix:
            if next_group >= DPDK_TBL8_GROUPS:
                raise ValueError("tbl8 group pool exhausted; raise DPDK_TBL8_GROUPS")
            group_of_prefix[stage1_index] = next_group
            # Seed the new group with the covering shorter route, if any.
            covering = tbl16.get(stage1_index, 0)
            if covering and covering < DPDK_TBL8_FLAG:
                for offset in range(256):
                    tbl8[(next_group << 8) + offset] = covering
            tbl16[stage1_index] = DPDK_TBL8_FLAG + next_group
            next_group += 1
        group = group_of_prefix[stage1_index]
        second_bits = min(route.length - stage1_bits, 8)
        base = (route.prefix >> (32 - stage1_bits - 8)) & 0xFF
        span = 1 << (8 - second_bits)
        base &= ~(span - 1)
        for offset in range(span):
            tbl8[(group << 8) + base + offset] = route.port
    return tbl16, tbl8


def build_lpm_dpdk() -> NetworkFunction:
    """Build the DPDK-style two-stage LPM NF."""
    routes = build_routes()
    tbl16, tbl8 = build_dpdk_tables(routes)
    module = Module("lpm-dpdk")
    module.add_region("tbl16", 1 << DPDK_STAGE1_BITS, DPDK_STAGE1_ENTRY_BYTES, initial=tbl16)
    module.add_region("tbl8", DPDK_TBL8_GROUPS * 256, 8, initial=tbl8)
    compile_nf(module, DPDK_LPM_SOURCE, entry="process")
    return NetworkFunction(
        name="lpm-dpdk",
        module=module,
        description="DPDK-style hierarchical direct lookup (tbl16 + tbl8 groups).",
        nf_class="lpm",
        data_structure="dpdk-lpm",
        packet_defaults=lpm_packet_defaults(),
        castan_packet_count=40,
        contention_regions=["tbl16"],
        notes=(
            "First-stage table exceeds the simulated L3 only by ~2x, so small "
            "contention workloads are less effective than against 1-stage lookup."
        ),
    )
