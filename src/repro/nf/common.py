"""Shared configuration for the evaluation NFs.

Routing tables (for the LPM NFs), scaled structure sizes, well-known
addresses (the LB's VIP, the NAT's internal prefix) and the helpers that
build packed flow keys.  The sizes are scaled down from the paper's
(1 GB / 64 MB tables, 25.6 MB L3) so experiments run in seconds, while
preserving the ratios that drive the evaluation: the 1-stage direct-lookup
table and the hash ring dwarf the simulated L3, the 2-stage first-level
table exceeds it by a small factor, and everything else fits comfortably.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import IPProtocol, Packet

# -- well-known addresses -------------------------------------------------------

VIP_ADDRESS = 0xC0A80001  # 192.168.0.1 — the LB's virtual IP
INTERNAL_PREFIX_OCTET = 10  # the NAT serves 10.0.0.0/8
EXTERNAL_SERVER = 0x08080808  # 8.8.8.8 — default external endpoint
DEFAULT_SERVICE_PORT = 80

# -- scaled structure sizes ------------------------------------------------------

# LPM with 1-stage direct lookup: 2^18 entries of 16 bytes = 4 MiB,
# i.e. 8x the default simulated L3 (the paper: 1 GB vs 25.6 MB ≈ 40x).
DIRECT_LOOKUP_BITS = 18
DIRECT_LOOKUP_ENTRY_BYTES = 16

# DPDK-style 2-stage lookup: first stage 2^16 entries of 16 bytes = 1 MiB
# (2x the simulated L3; the paper: 64 MB vs 25.6 MB ≈ 2.5x), second stage
# groups of 256 entries.
DPDK_STAGE1_BITS = 16
DPDK_STAGE1_ENTRY_BYTES = 16
DPDK_TBL8_GROUPS = 64
DPDK_TBL8_FLAG = 1 << 16

# Patricia/binary trie node pool.
TRIE_MAX_NODES = 2048

# Chained hash table: 4096 buckets, up to 8192 stored flows (32 KiB of
# bucket heads — well inside L3, so collisions, not contention, are the
# attack surface, as in the paper's 65,536-entry table).
HASH_TABLE_BUCKETS = 4096
HASH_TABLE_MAX_FLOWS = 8192

# Open-addressing hash ring: 65,536 cache-line-sized entries = 4 MiB,
# dwarfing the simulated L3 (the paper: 16.7M entries ≈ 1 GB).
HASH_RING_SIZE = 65536
HASH_RING_ENTRY_BYTES = 64

# Binary trees (unbalanced and red-black) node pools.
TREE_MAX_NODES = 8192

# Load balancer backends.
LB_BACKENDS = 16

# NAT external port allocation starts here.
NAT_FIRST_EXTERNAL_PORT = 20000

# Stateful firewall: connection-tracking ring buffer.  128 slots keep the
# symbolic scans tractable while being small enough that a few hundred
# distinct flows fill the ring on the testbed; fixed per-connection TTL in
# clock ticks (one tick per processed packet).
FIREWALL_SLOTS = 128
FIREWALL_TTL_TICKS = 512

# Token-bucket policer: two-choice (cuckoo-style) hash tables.  Like the
# hash ring, each table keeps one cache-line-sized key entry per slot and
# spans the full 16-bit hash range, so the two tables together dwarf the
# simulated L3 and give the cache model real contention sets to target.
POLICER_SLOTS = 65536  # per table; power of two (slot = hash & (SLOTS - 1))
POLICER_KEY_ENTRY_BYTES = 64
POLICER_BURST = 4  # bucket capacity in tokens
POLICER_REFILL_TICKS = 4  # clock ticks to earn one token
POLICER_MAX_KICKS = 4  # relocation-cascade bound per insertion

# Bloom-filter dedup: bit-array size (one 8-byte word per bit keeps the
# dialect simple) and exact-store capacity for slow-path verification.
BLOOM_BITS = 1024
DEDUP_MAX_FINGERPRINTS = 2048

# DPI pattern trie: node pool, children per node, pseudo-payload depth.
DPI_MAX_NODES = 256
DPI_FANOUT = 4
DPI_DEPTH = 8


# -- the routing table used by every LPM NF (§5.1) --------------------------------


@dataclass(frozen=True)
class Route:
    """One IPv4 route: ``prefix/length -> port``."""

    prefix: int
    length: int
    port: int

    def matches(self, address: int) -> bool:
        if self.length == 0:
            return True
        shift = 32 - self.length
        return (address >> shift) == (self.prefix >> shift)


def build_routes(include_host_routes: bool = True) -> list[Route]:
    """The paper's forwarding table: 8 routes each of /8, /16, /24 (and /32).

    Prefixes overlap as much as possible: every prefix contains a more
    specific one (except the host routes).
    """
    routes: list[Route] = []
    port = 1
    base = INTERNAL_PREFIX_OCTET << 24  # 10.0.0.0
    for i in range(8):  # /8: 10.0.0.0/8 .. 17.0.0.0/8
        routes.append(Route(prefix=((INTERNAL_PREFIX_OCTET + i) << 24), length=8, port=port))
        port += 1
    for i in range(8):  # /16: 10.0.0.0/16 .. 10.7.0.0/16 (inside 10/8)
        routes.append(Route(prefix=base | (i << 16), length=16, port=port))
        port += 1
    for i in range(8):  # /24: 10.0.0.0/24 .. 10.0.7.0/24 (inside 10.0/16)
        routes.append(Route(prefix=base | (i << 8), length=24, port=port))
        port += 1
    if include_host_routes:
        for i in range(8):  # /32: 10.0.0.0/32 .. 10.0.0.7/32 (inside 10.0.0/24)
            routes.append(Route(prefix=base | i, length=32, port=port))
            port += 1
    return routes


def longest_prefix_match(routes: list[Route], address: int) -> int:
    """Reference LPM lookup (used by tests as ground truth).  0 = no route."""
    best_port = 0
    best_length = -1
    for route in routes:
        if route.length > best_length and route.matches(address):
            best_port = route.port
            best_length = route.length
    return best_port


def most_specific_route_addresses(routes: list[Route]) -> list[int]:
    """One address per route, matching its most specific form.

    These are the destinations the Manual LPM workload uses: packets that
    match the deepest routes and therefore traverse the longest trie paths.
    """
    addresses = []
    for route in sorted(routes, key=lambda r: -r.length):
        addresses.append(route.prefix | 0 if route.length == 32 else route.prefix)
    return addresses


# -- packet-field defaults shared by the NF descriptors -----------------------------


def lpm_packet_defaults() -> dict[str, int]:
    return {
        "src_ip": 0xC0A80064,
        "dst_ip": (INTERNAL_PREFIX_OCTET << 24) | 1,
        "src_port": 10000,
        "dst_port": DEFAULT_SERVICE_PORT,
        "protocol": int(IPProtocol.UDP),
    }


def lb_packet_defaults() -> dict[str, int]:
    return {
        "src_ip": 0x0B000001,
        "dst_ip": VIP_ADDRESS,
        "src_port": 10000,
        "dst_port": DEFAULT_SERVICE_PORT,
        "protocol": int(IPProtocol.UDP),
    }


def nat_packet_defaults() -> dict[str, int]:
    return {
        "src_ip": (INTERNAL_PREFIX_OCTET << 24) | 0x000101,
        "dst_ip": EXTERNAL_SERVER,
        "src_port": 10000,
        "dst_port": DEFAULT_SERVICE_PORT,
        "protocol": int(IPProtocol.UDP),
    }


def lb_workload_hints() -> dict[str, int]:
    """Generated LB traffic must target the VIP (the only interesting case)."""
    return {"dst_ip": VIP_ADDRESS, "protocol": int(IPProtocol.UDP)}


def nat_workload_hints() -> dict[str, int]:
    """Generated NAT traffic must come from the internal network."""
    return {"src_ip_prefix": INTERNAL_PREFIX_OCTET << 24, "src_ip_prefix_bits": 8,
            "protocol": int(IPProtocol.UDP)}


def firewall_packet_defaults() -> dict[str, int]:
    """The firewall tracks outbound (internal → external) connections, so it
    shares the NAT's internal-source defaults."""
    return nat_packet_defaults()


def firewall_workload_hints() -> dict[str, int]:
    """Generated firewall traffic is outbound, like the NAT's."""
    return nat_workload_hints()


def middlebox_packet_defaults() -> dict[str, int]:
    """Defaults for the transparent middleboxes (policer, dedup, DPI).

    Any L4 traffic is interesting, so no field is *semantically* required
    (unlike the LB's VIP or the NAT's internal prefix) — these are just the
    fallback values unconstrained packet-field symbols materialise as."""
    return {
        "src_ip": 0x0B000001,
        "dst_ip": EXTERNAL_SERVER,
        "src_port": 10000,
        "dst_port": DEFAULT_SERVICE_PORT,
        "protocol": int(IPProtocol.UDP),
    }


def make_flow_packet(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    protocol: int = int(IPProtocol.UDP),
) -> Packet:
    """Small convenience wrapper used by the manual workloads."""
    return Packet(
        src_ip=src_ip, dst_ip=dst_ip, src_port=src_port, dst_port=dst_port, protocol=protocol
    )
