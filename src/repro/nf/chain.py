"""Composable NF service chains (router → firewall → NAT → ...).

The paper analyzes one NF at a time, but deployed data paths run several
NFs back to back on one core, sharing one cache hierarchy.  A chain is
itself just an NF: this module stitches the stages' standalone NFIL
modules into one merged module (every function, region and hash-function
name gets a stage prefix; region base addresses move onto per-stage
address planes) and compiles a small glue ``process`` that threads the
packet fields through the stages, short-circuiting on drop.

Chains are addressed through the registry:

* ``get_nf("chain:lpm-dpdk,fw-conntrack,nat-hash-table")`` — ad-hoc chain
  from a comma-separated stage spec.  Stage aliases (``router``, ``fw``,
  ``nat``, ``policer``, ``lb``) expand to canonical registry names, and a
  stage may carry an explicit label (``nat-hash-table@nat2``) which is
  required when the same NF appears twice.
* ``get_nf("chain-gateway")`` / ``get_nf("chain-edge")`` — the named
  preset chains that also sit in ``EVALUATION_NFS``.

The merged NF records a :class:`~repro.nf.base.ChainStageInfo` per stage,
which the symbex engine uses for per-stage cost attribution and the cache
layer uses to partition the hierarchy per stage (``CastanConfig
.cache_partition="partitioned"``).
"""

from __future__ import annotations

import difflib

from repro.frontend.compiler import compile_nf
from repro.ir.instructions import Call, Havoc, Load, Store
from repro.ir.module import Module
from repro.nf.base import ChainStageInfo, NetworkFunction

#: Spec prefix understood by ``get_nf``.
CHAIN_SPEC_PREFIX = "chain:"

#: Short stage aliases accepted in chain specs.
STAGE_ALIASES: dict[str, str] = {
    "router": "lpm-dpdk",
    "fw": "fw-conntrack",
    "nat": "nat-hash-table",
    "policer": "policer-two-choice",
    "lb": "lb-hash-table",
}

#: Named preset chains registered in the NF registry (and EVALUATION_NFS).
PRESET_CHAINS: dict[str, str] = {
    "chain-gateway": "chain:lpm-dpdk,fw-conntrack,nat-hash-table",
    "chain-edge": "chain:lpm-dpdk,fw-conntrack,nat-hash-table,policer-two-choice",
}

# Stage regions are rebased onto disjoint address planes so the shared
# cache model sees distinct (but still deterministic) physical layouts.
STAGE_ADDRESS_STRIDE = 1 << 32

# Default chain traffic: an internal (10/8) source sending to 11.0.0.1,
# which matches the routers' 11.0.0.0/8 route and the firewall/NAT
# internal-source checks, so the default packet traverses every stage.
CHAIN_PACKET_DEFAULTS = {
    "src_ip": (10 << 24) | 0x000101,  # 10.0.1.1
    "dst_ip": 0x0B000001,  # 11.0.0.1
    "src_port": 10000,
    "dst_port": 80,
    "protocol": 17,
}


def is_chain_spec(name: str) -> bool:
    """True for ``chain:`` specs (not for preset chain names)."""
    return name.startswith(CHAIN_SPEC_PREFIX)


def _sanitize(label: str) -> str:
    return label.replace("-", "_").replace("@", "_").replace(".", "_")


def parse_chain_spec(spec: str) -> list[tuple[str, str]]:
    """Parse a ``chain:`` spec into ``[(nf_name, label), ...]``.

    Each comma-separated stage is a registry name or alias, optionally
    suffixed with ``@label``.  Errors name the offending stage (1-based
    position) and suggest close matches, mirroring ``get_nf``.
    """
    from repro.nf.registry import NF_NAMES

    if not is_chain_spec(spec):
        raise KeyError(f"not a chain spec (expected {CHAIN_SPEC_PREFIX!r} prefix): {spec!r}")
    body = spec[len(CHAIN_SPEC_PREFIX):].strip()
    items = [item.strip() for item in body.split(",")] if body else []
    if not items or any(not item for item in items):
        raise KeyError(f"empty stage in chain spec {spec!r}")

    known = [n for n in NF_NAMES if not n.startswith("chain-")]
    stages: list[tuple[str, str]] = []
    labels_seen: dict[str, int] = {}
    for position, item in enumerate(items, start=1):
        name, _, label = item.partition("@")
        name = name.strip()
        label = label.strip()
        resolved = STAGE_ALIASES.get(name, name)
        if resolved.startswith("chain"):
            raise KeyError(
                f"chain stage {position} ({item!r}) in {spec!r}: "
                "chains cannot nest other chains"
            )
        if resolved not in known:
            candidates = known + list(STAGE_ALIASES)
            suggestions = difflib.get_close_matches(name, candidates, n=3, cutoff=0.6)
            if suggestions:
                hint = " or ".join(repr(s) for s in suggestions)
                message = (
                    f"chain stage {position} ({name!r}) in {spec!r} is not a "
                    f"registered NF; did you mean {hint}?"
                )
            else:
                message = (
                    f"chain stage {position} ({name!r}) in {spec!r} is not a "
                    f"registered NF; available: {', '.join(known)}"
                )
            raise KeyError(message)
        label = label or resolved
        if label in labels_seen:
            raise KeyError(
                f"chain stage {position} ({item!r}) in {spec!r} duplicates stage "
                f"{labels_seen[label]} — give repeated NFs distinct labels, e.g. "
                f"{resolved}@{_sanitize(label)}2"
            )
        labels_seen[label] = position
        stages.append((resolved, label))
    return stages


def _rename_stage_module(module: Module, prefix: str, offset: int) -> None:
    """Prefix every function/region/hash symbol in ``module`` in place and
    shift region bases by ``offset``.  Block names are function-local and
    stay untouched."""
    renamed_functions = {}
    for name, function in module.functions.items():
        function.name = prefix + name
        renamed_functions[function.name] = function
        for instruction in function.instructions():
            if isinstance(instruction, Call):
                instruction.callee = prefix + instruction.callee
            elif isinstance(instruction, Havoc):
                instruction.hash_function = prefix + instruction.hash_function
            elif isinstance(instruction, Load):
                instruction.region = prefix + instruction.region
            elif isinstance(instruction, Store):
                instruction.region = prefix + instruction.region
    module.functions = renamed_functions

    renamed_regions = {}
    for name, region in module.regions.items():
        region.name = prefix + name
        region.base_address += offset
        renamed_regions[region.name] = region
    module.regions = renamed_regions


def build_chain(spec: str, name: str | None = None) -> NetworkFunction:
    """Build the composed NF for a ``chain:`` spec."""
    from repro.nf.registry import get_nf

    stages = parse_chain_spec(spec)
    chain_name = name or spec
    module = Module(chain_name)

    stage_infos: list[ChainStageInfo] = []
    stage_nfs: list[NetworkFunction] = []
    hash_functions: dict = {}
    hash_output_bits: dict[str, int] = {}
    contention_regions: list[str] = []
    merged_hints: dict[str, int] = {}
    packet_count = 0
    for index, (nf_name, label) in enumerate(stages):
        nf = get_nf(nf_name)
        prefix = f"s{index}_{_sanitize(label)}__"
        offset = index * STAGE_ADDRESS_STRIDE
        _rename_stage_module(nf.module, prefix, offset)
        for region in nf.module.regions.values():
            if region.name in module.regions:
                raise KeyError(f"duplicate region {region.name!r} merging {spec!r}")
            module.regions[region.name] = region
        for function in nf.module.functions.values():
            module.add_function(function)
        for hash_name, fn in nf.hash_functions.items():
            hash_functions[prefix + hash_name] = fn
        for hash_name, bits in nf.hash_output_bits.items():
            hash_output_bits[prefix + hash_name] = bits
        prefixed_contention = [prefix + r for r in nf.contention_regions]
        contention_regions.extend(prefixed_contention)
        for hint, value in nf.workload_hints.items():
            merged_hints.setdefault(hint, value)
        packet_count = max(packet_count, nf.castan_packet_count)
        stage_infos.append(
            ChainStageInfo(
                label=label,
                nf_name=nf_name,
                prefix=prefix,
                entry=prefix + nf.entry,
                address_offset=offset,
                region_names=list(nf.module.regions),
                contention_regions=prefixed_contention,
                nf_class=nf.nf_class,
            )
        )
        stage_nfs.append(nf)

    # If a router stage filters by destination, steer generated traffic to
    # a routed destination so packets survive past stage 0.
    if any(s.nf_class == "lpm" for s in stage_infos):
        merged_hints.setdefault("dst_ip", CHAIN_PACKET_DEFAULTS["dst_ip"])

    params = "src_ip, dst_ip, src_port, dst_port, protocol"
    lines = [f"def process({params}):"]
    for index, (info, nf) in enumerate(zip(stage_infos, stage_nfs)):
        lines.append(f"    out = {info.entry}({params})")
        if index < len(stage_infos) - 1:
            lines.append("    if out == 0:")
            lines.append("        return 0")
            if nf.chain_result_rewrite == "src_port":
                lines.append("    src_port = out")
    lines.append("    return out")
    glue_source = "\n".join(lines) + "\n"
    compile_nf(module, glue_source, entry="process")

    description = " -> ".join(info.label for info in stage_infos)
    return NetworkFunction(
        name=chain_name,
        module=module,
        entry="process",
        description=f"service chain: {description}",
        nf_class="chain",
        data_structure="pipeline",
        hash_functions=hash_functions,
        hash_output_bits=hash_output_bits,
        packet_defaults=dict(CHAIN_PACKET_DEFAULTS),
        workload_hints=merged_hints,
        castan_packet_count=packet_count or 10,
        contention_regions=contention_regions,
        chain_stages=stage_infos,
        notes=f"composed from spec {spec!r}",
    )
