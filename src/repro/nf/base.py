"""The :class:`NetworkFunction` descriptor shared by analysis and testbed.

A network function bundles the compiled NFIL module with everything the
rest of the pipeline needs to know about it: which Python hash callables
back its ``castan_havoc`` annotations, sensible default packet-field
values, hints for the workload generators (e.g. the LB's VIP), the number
of packets CASTAN should synthesize for it (Table 4), and an optional
hand-crafted *Manual* adversarial workload (§5.1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.ir.module import Module
from repro.net.packet import Packet

# Return values of the NF entry function.  0 means "drop"; positive values
# are output ports / backend indices / translated ports.
ACTION_DROP = 0
ACTION_FORWARD = 1


@dataclass
class ChainStageInfo:
    """One stage of a composed NF chain (see :mod:`repro.nf.chain`).

    Records how the stage's standalone module was embedded into the merged
    chain module: the symbol prefix applied to its functions/regions, the
    virtual-address offset applied to its region bases, and which of the
    (prefixed) regions carry cache contention.  The cache layer uses
    ``address_offset`` to map chain addresses back onto the standalone
    layout when the hierarchy is partitioned per stage.
    """

    label: str
    nf_name: str
    prefix: str
    entry: str  # prefixed entry function name inside the chain module
    address_offset: int
    region_names: list[str] = field(default_factory=list)
    contention_regions: list[str] = field(default_factory=list)
    nf_class: str = "misc"


@dataclass
class NetworkFunction:
    """A compiled NF plus the metadata the pipeline needs."""

    name: str
    module: Module
    entry: str = "process"
    description: str = ""
    nf_class: str = "misc"  # "nop" | "lpm" | "nat" | "lb"
    data_structure: str = ""
    # Python implementations of the hash functions referenced by havocs.
    hash_functions: dict[str, Callable[[int], int]] = field(default_factory=dict)
    # Output width (bits) of each hash function, for havoc symbols.
    hash_output_bits: dict[str, int] = field(default_factory=dict)
    # Default values for packet fields left unconstrained by the solver
    # (keys are field names: src_ip, dst_ip, src_port, dst_port, protocol).
    packet_defaults: dict[str, int] = field(default_factory=dict)
    # Hints for workload generators: fields every generated packet must pin
    # (e.g. the LB's VIP as destination) plus address ranges.
    workload_hints: dict[str, int] = field(default_factory=dict)
    # Number of packets CASTAN synthesizes for this NF (Table 4).
    castan_packet_count: int = 10
    # Optional hand-crafted adversarial workload (the paper's "Manual").
    manual_workload: Callable[[int], list[Packet]] | None = None
    # Names of the large regions worth covering with the cache model.
    contention_regions: list[str] = field(default_factory=list)
    # For chains: per-stage embedding metadata (empty for standalone NFs).
    chain_stages: list[ChainStageInfo] = field(default_factory=list)
    # When this NF runs as a chain stage, which packet field its return
    # value rewrites for downstream stages (e.g. the NAT's translated
    # source port).  None means the return value is only a forward/drop
    # verdict and the packet fields pass through unchanged.
    chain_result_rewrite: str | None = None
    notes: str = ""

    @property
    def has_manual_workload(self) -> bool:
        return self.manual_workload is not None

    @property
    def uses_hashing(self) -> bool:
        return bool(self.hash_functions)

    @property
    def is_chain(self) -> bool:
        return bool(self.chain_stages)

    @property
    def stage_entries(self) -> dict[str, str]:
        """Prefixed stage entry function name -> stage label (chains only)."""
        return {stage.entry: stage.label for stage in self.chain_stages}

    def fingerprint(self) -> str:
        """Stable SHA-256 identity of *what this NF analyzes as*.

        Covers the compiled module (textual NFIL listing, which renders
        every instruction, region geometry and base address), each region's
        initial contents (the listing omits them), and the analysis-relevant
        metadata: entry point, packet defaults, workload hints, per-NF
        packet count, hash-function names and output widths, contention
        regions and chain composition.  Hash *callables* are identified by
        name only — the registry binds names to implementations, so a
        changed implementation must change either the name or the module.

        Together with :meth:`repro.core.config.CastanConfig.content_hash`
        this is the content address of an analysis: the service result
        store treats equal fingerprints as "the same NF", so any input the
        pipeline reads must be folded in here.
        """
        from repro.ir.printer import print_module

        digest = hashlib.sha256()

        def feed(tag: str, text: str) -> None:
            digest.update(f"{tag}={text}\x00".encode())

        feed("name", self.name)
        feed("entry", self.entry)
        feed("module", print_module(self.module))
        for region in self.module.regions.values():
            initial = ",".join(f"{i}:{v}" for i, v in sorted(region.initial.items()))
            feed(f"region-initial:{region.name}", initial)
        feed("packet_defaults", repr(sorted(self.packet_defaults.items())))
        feed("workload_hints", repr(sorted(self.workload_hints.items())))
        feed("castan_packet_count", str(self.castan_packet_count))
        feed("hash_functions", ",".join(sorted(self.hash_functions)))
        feed("hash_output_bits", repr(sorted(self.hash_output_bits.items())))
        feed("contention_regions", ",".join(self.contention_regions))
        feed("chain_result_rewrite", str(self.chain_result_rewrite))
        for stage in self.chain_stages:
            feed(
                f"stage:{stage.label}",
                f"{stage.nf_name}|{stage.prefix}|{stage.entry}|{stage.address_offset}",
            )
        return digest.hexdigest()

    def packet_from_fields(self, fields: dict[str, int]) -> Packet:
        """Build a concrete packet from solver-produced field values."""
        merged = dict(self.packet_defaults)
        merged.update(fields)
        return Packet(
            src_ip=merged.get("src_ip", 0x0A000001),
            dst_ip=merged.get("dst_ip", 0x0A000002),
            src_port=merged.get("src_port", 10000),
            dst_port=merged.get("dst_port", 80),
            protocol=merged.get("protocol", 17),
        )

    def __repr__(self) -> str:
        return (
            f"NetworkFunction({self.name!r}, class={self.nf_class}, "
            f"data_structure={self.data_structure!r}, "
            f"instructions={self.module.instruction_count})"
        )
