"""LPM with one-stage Direct Lookup (§5.1, data structure 2).

The forwarding table is flattened into a single large array indexed by the
top ``DIRECT_LOOKUP_BITS`` bits of the destination address.  Lookup is a
single memory access, so instruction counts are flat across packets — the
attack surface is purely the cache: the table dwarfs the simulated L3, and
a workload whose destinations map to one L3 contention set keeps evicting
itself and pays a DRAM access per packet (§5.2, Figs. 4–5).
"""

from __future__ import annotations

from repro.frontend.compiler import compile_nf
from repro.ir.module import Module
from repro.nf.base import NetworkFunction
from repro.nf.common import (
    DIRECT_LOOKUP_BITS,
    DIRECT_LOOKUP_ENTRY_BYTES,
    Route,
    build_routes,
    longest_prefix_match,
    lpm_packet_defaults,
)

DIRECT_LOOKUP_SOURCE = f"""
DL_SHIFT = {32 - DIRECT_LOOKUP_BITS}


def process(src_ip, dst_ip, src_port, dst_port, protocol):
    index = dst_ip >> DL_SHIFT
    return dl_table[index]
"""


def build_direct_lookup_table(routes: list[Route], bits: int = DIRECT_LOOKUP_BITS) -> dict[int, int]:
    """Expand the route list into the flat array's non-zero initial entries.

    Every route is truncated/expanded to ``bits`` bits of prefix; more
    specific routes win, mirroring how the C NF builds its table at start-up.
    """
    table: dict[int, int] = {}
    # Expand from least to most specific so that longer prefixes overwrite.
    for route in sorted(routes, key=lambda r: r.length):
        effective = min(route.length, bits)
        base = (route.prefix >> (32 - bits)) & ((1 << bits) - 1)
        base &= ~((1 << (bits - effective)) - 1) if effective < bits else (1 << bits) - 1
        span = 1 << (bits - effective)
        for offset in range(span):
            table[base + offset] = route.port
    return table


def build_lpm_direct() -> NetworkFunction:
    """Build the one-stage Direct Lookup LPM NF."""
    routes = build_routes(include_host_routes=False)
    table = build_direct_lookup_table(routes)
    module = Module("lpm-direct")
    module.add_region(
        "dl_table", 1 << DIRECT_LOOKUP_BITS, DIRECT_LOOKUP_ENTRY_BYTES, initial=table
    )
    compile_nf(module, DIRECT_LOOKUP_SOURCE, entry="process")
    nf = NetworkFunction(
        name="lpm-direct",
        module=module,
        description="Destination LPM via a single flat lookup table (one memory access).",
        nf_class="lpm",
        data_structure="direct-lookup",
        packet_defaults=lpm_packet_defaults(),
        castan_packet_count=40,
        contention_regions=["dl_table"],
        notes=(
            "The table exceeds the simulated L3 severalfold; adversarial workloads "
            "drive all lookups into one contention set."
        ),
    )
    # Keep the reference model handy for tests.
    nf.reference_lookup = lambda address: longest_prefix_match(routes, address)  # type: ignore[attr-defined]
    return nf
