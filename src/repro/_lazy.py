"""Helper for lazily re-exporting names from subpackage ``__init__`` files.

Several subpackages (``symbex``, ``cache``, ``perf``) re-export their public
API from their ``__init__``.  Doing that eagerly creates import cycles
(e.g. the cache model needs symbolic expressions while the symbolic engine
needs the cache model), so the re-exports are resolved on first attribute
access instead.
"""

from __future__ import annotations

import importlib
from typing import Callable


def lazy_exports(
    package_name: str, exports: dict[str, tuple[str, str]]
) -> tuple[Callable[[str], object], Callable[[], list[str]]]:
    """Build ``__getattr__``/``__dir__`` implementations for a package.

    ``exports`` maps the public name to ``(module, attribute)``.  Usage::

        __getattr__, __dir__ = lazy_exports(__name__, {"Foo": (".foo", "Foo")})
    """

    def __getattr__(name: str) -> object:
        try:
            module_name, attribute = exports[name]
        except KeyError:
            raise AttributeError(f"module {package_name!r} has no attribute {name!r}") from None
        module = importlib.import_module(module_name, package_name)
        return getattr(module, attribute)

    def __dir__() -> list[str]:
        return sorted(exports)

    return __getattr__, __dir__
